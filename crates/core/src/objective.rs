//! The CAFQA classical objective: stabilizer-state energy plus sector
//! penalties, evaluated by tableau simulation (paper §3, steps 2–7).

use cafqa_circuit::{Ansatz, CompiledAnsatz};
use cafqa_clifford::Tableau;
use cafqa_linalg::Complex64;
use cafqa_pauli::{PauliOp, PauliString};

/// A quadratic sector penalty `weight · ⟨(O − target)²⟩`, the paper's
/// mechanism for imposing electron-count (and spin) preservation directly
/// on the objective function (§3 step 5, §7.1.1 for the H2+ cation).
#[derive(Debug, Clone)]
pub struct Penalty {
    /// Human-readable label ("electron count", "sz", …).
    pub label: String,
    /// The squared shifted operator `(O − target)²`, precomputed.
    squared: PauliOp,
    /// Penalty weight.
    pub weight: f64,
}

impl Penalty {
    /// Builds a penalty from the operator, its target eigenvalue and a
    /// weight. The squared operator is formed once, symbolically.
    pub fn new(label: impl Into<String>, op: &PauliOp, target: f64, weight: f64) -> Self {
        let mut shifted = op.clone();
        shifted.add_term(Complex64::from(-target), PauliString::identity(op.num_qubits()));
        let squared = shifted.mul_op(&shifted).pruned(1e-12);
        Penalty { label: label.into(), squared, weight }
    }

    /// The penalty value on a prepared stabilizer state.
    pub fn value(&self, tableau: &Tableau) -> f64 {
        self.weight * tableau.expectation(&self.squared)
    }

    /// The penalty operator (for non-stabilizer evaluation paths).
    pub fn squared_op(&self) -> &PauliOp {
        &self.squared
    }
}

/// The classical evaluation of one Clifford-ansatz configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObjectiveValue {
    /// The raw Hamiltonian expectation `⟨H⟩` (what gets reported).
    pub energy: f64,
    /// `⟨H⟩` plus all penalties (what gets minimized).
    pub penalized: f64,
}

/// Hamiltonians above this term count are evaluated with worker threads.
const PARALLEL_TERM_THRESHOLD: usize = 4096;

/// Reusable per-thread evaluation state: one stabilizer tableau that is
/// re-prepared in place for every candidate, so the hot loop never
/// allocates. Create one per worker with [`CliffordObjective::scratch`]
/// and pass it to [`CliffordObjective::evaluate_with`].
pub struct EvalScratch {
    tableau: Tableau,
}

/// The CAFQA objective: binds discrete Clifford indices into the ansatz,
/// simulates the stabilizer state, and returns `⟨H⟩` plus penalties.
pub struct CliffordObjective<'a> {
    ansatz: &'a dyn Ansatz,
    /// The ansatz structure lowered once into primitive gates + rotation
    /// slots; `None` falls back to per-candidate `bind_clifford` lowering.
    template: Option<CompiledAnsatz>,
    hamiltonian: &'a PauliOp,
    /// Flat copy of the Hamiltonian for chunked parallel evaluation.
    terms: Vec<(PauliString, f64)>,
    penalties: Vec<Penalty>,
}

impl<'a> CliffordObjective<'a> {
    /// Creates the objective, compiling the ansatz structure into a
    /// primitive-gate template once (see [`CompiledAnsatz`]); ansätze that
    /// cannot be compiled transparently use the per-candidate lowering.
    ///
    /// # Panics
    ///
    /// Panics if the Hamiltonian width differs from the ansatz width.
    pub fn new(ansatz: &'a dyn Ansatz, hamiltonian: &'a PauliOp) -> Self {
        assert_eq!(
            ansatz.num_qubits(),
            hamiltonian.num_qubits(),
            "ansatz/hamiltonian width mismatch"
        );
        let terms = hamiltonian.iter().map(|(p, c)| (*p, c.re)).collect();
        let template = CompiledAnsatz::compile(ansatz);
        CliffordObjective { ansatz, template, hamiltonian, terms, penalties: Vec::new() }
    }

    /// Whether the ansatz compiled to a template (the fast path).
    pub fn is_compiled(&self) -> bool {
        self.template.is_some()
    }

    /// A fresh evaluation scratch; reuse it across candidates on one
    /// thread to keep the search loop allocation-free.
    pub fn scratch(&self) -> EvalScratch {
        EvalScratch { tableau: Tableau::zero_state(self.ansatz.num_qubits()) }
    }

    /// Prepares the candidate's stabilizer state into the scratch tableau.
    fn prepare<'t>(&self, config: &[usize], scratch: &'t mut EvalScratch) -> &'t Tableau {
        if let Some(template) = &self.template {
            scratch.tableau.run_compiled(template, config);
        } else {
            let circuit = self.ansatz.bind_clifford(config);
            scratch.tableau = Tableau::from_circuit(&circuit)
                .expect("clifford-bound ansatz must be a Clifford circuit");
        }
        &scratch.tableau
    }

    /// `⟨H⟩` on a prepared tableau, chunked over worker threads for the
    /// large Hamiltonians of the 18/34-qubit systems (DESIGN.md §5).
    fn hamiltonian_expectation(&self, tableau: &Tableau) -> f64 {
        if self.terms.len() < PARALLEL_TERM_THRESHOLD {
            return self
                .terms
                .iter()
                .map(|(p, c)| c * f64::from(tableau.expectation_pauli(p)))
                .sum();
        }
        let chunk = self.term_chunk_len();
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .terms
                .chunks(chunk)
                .map(|terms| {
                    scope.spawn(move || {
                        terms
                            .iter()
                            .map(|(p, c)| c * f64::from(tableau.expectation_pauli(p)))
                            .sum::<f64>()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("worker panicked")).sum()
        })
    }

    /// The term-chunk length shared by the threaded and the
    /// nested-serial summation paths, so both associate the floating
    /// additions identically (bit-identical energies).
    fn term_chunk_len(&self) -> usize {
        let workers = std::thread::available_parallelism().map_or(2, |n| n.get()).min(8);
        self.terms.len().div_ceil(workers)
    }

    /// [`Self::hamiltonian_expectation`] for callers that already run on
    /// a sharded worker: no inner thread spawns (which would oversubscribe
    /// the host), but the same fixed-chunk partial-sum association as the
    /// threaded path — so energies stay bit-identical either way.
    fn hamiltonian_expectation_nested(&self, tableau: &Tableau) -> f64 {
        if self.terms.len() < PARALLEL_TERM_THRESHOLD {
            return self
                .terms
                .iter()
                .map(|(p, c)| c * f64::from(tableau.expectation_pauli(p)))
                .sum();
        }
        let chunk = self.term_chunk_len();
        self.terms
            .chunks(chunk)
            .map(|terms| {
                terms.iter().map(|(p, c)| c * f64::from(tableau.expectation_pauli(p))).sum::<f64>()
            })
            .sum()
    }

    /// Adds a sector penalty.
    pub fn with_penalty(mut self, penalty: Penalty) -> Self {
        assert_eq!(
            penalty.squared.num_qubits(),
            self.hamiltonian.num_qubits(),
            "penalty width mismatch"
        );
        self.penalties.push(penalty);
        self
    }

    /// Number of discrete search parameters.
    pub fn num_parameters(&self) -> usize {
        self.ansatz.num_parameters()
    }

    /// Evaluates one discrete configuration (indices into the four
    /// Clifford angles). Exact, noise-free, and polynomial-time — the
    /// whole point of the paper.
    ///
    /// # Panics
    ///
    /// Panics if `config` has the wrong length (ansatz contract).
    pub fn evaluate(&self, config: &[usize]) -> ObjectiveValue {
        self.evaluate_with(config, &mut self.scratch())
    }

    /// [`Self::evaluate`] against a caller-owned scratch — the hot-loop
    /// entry point: no allocation per candidate when the ansatz compiled.
    pub fn evaluate_with(&self, config: &[usize], scratch: &mut EvalScratch) -> ObjectiveValue {
        self.evaluate_impl(config, scratch, false)
    }

    /// [`Self::evaluate_with`] for callers already running on a sharded
    /// worker thread (batch evaluation, exhaustive shards): identical
    /// results, but the per-candidate term sum never spawns inner threads.
    pub(crate) fn evaluate_with_nested(
        &self,
        config: &[usize],
        scratch: &mut EvalScratch,
    ) -> ObjectiveValue {
        self.evaluate_impl(config, scratch, true)
    }

    fn evaluate_impl(
        &self,
        config: &[usize],
        scratch: &mut EvalScratch,
        nested: bool,
    ) -> ObjectiveValue {
        let tableau = self.prepare(config, scratch);
        let energy = if nested {
            self.hamiltonian_expectation_nested(tableau)
        } else {
            self.hamiltonian_expectation(tableau)
        };
        let penalized = energy + self.penalties.iter().map(|p| p.value(tableau)).sum::<f64>();
        ObjectiveValue { energy, penalized }
    }

    /// Evaluates a batch of candidates, sharded across worker threads.
    ///
    /// Results are in input order and bit-identical to calling
    /// [`Self::evaluate`] per candidate serially (each candidate's term
    /// sum runs in the same order either way). Small batches stay on the
    /// calling thread; each worker reuses one scratch tableau.
    pub fn evaluate_batch(&self, configs: &[Vec<usize>]) -> Vec<ObjectiveValue> {
        // Rough per-candidate cost in row-update units; spawning threads
        // costs ~tens of µs, so tiny workloads stay on the calling thread.
        let per_eval = self.terms.len().max(1) * self.ansatz.num_qubits().max(1);
        let workers = if configs.len() * per_eval < 8192 {
            1
        } else {
            std::thread::available_parallelism().map_or(1, |n| n.get()).min(16)
        };
        self.evaluate_batch_with_workers(configs, workers)
    }

    /// [`Self::evaluate_batch`] with an explicit worker count (normally
    /// the available parallelism, gated by batch size); exposed so the
    /// sharded path stays testable and benchmarkable regardless of the
    /// host's core count.
    pub fn evaluate_batch_with_workers(
        &self,
        configs: &[Vec<usize>],
        workers: usize,
    ) -> Vec<ObjectiveValue> {
        let zero = ObjectiveValue { energy: 0.0, penalized: 0.0 };
        let mut out = vec![zero; configs.len()];
        let workers = workers.min(configs.len());
        if workers <= 1 {
            let mut scratch = self.scratch();
            for (config, slot) in configs.iter().zip(out.iter_mut()) {
                *slot = self.evaluate_with(config, &mut scratch);
            }
            return out;
        }
        let chunk = configs.len().div_ceil(workers);
        std::thread::scope(|scope| {
            for (config_chunk, out_chunk) in configs.chunks(chunk).zip(out.chunks_mut(chunk)) {
                scope.spawn(move || {
                    let mut scratch = self.scratch();
                    for (config, slot) in config_chunk.iter().zip(out_chunk.iter_mut()) {
                        // Nested: the batch is already sharded, so the
                        // term sum must not spawn a second thread layer.
                        *slot = self.evaluate_with_nested(config, &mut scratch);
                    }
                });
            }
        });
        out
    }

    /// Per-Pauli-term expectations of the Hamiltonian on a configuration,
    /// in deterministic term order — the data behind the paper's Fig. 6.
    pub fn term_expectations(&self, config: &[usize]) -> Vec<(PauliString, f64, i8)> {
        let mut scratch = self.scratch();
        let tableau = self.prepare(config, &mut scratch);
        self.hamiltonian.iter().map(|(p, c)| (*p, c.re, tableau.expectation_pauli(p))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cafqa_circuit::EfficientSu2;

    #[test]
    fn xx_microbenchmark_reaches_minus_one() {
        // Paper Fig. 5: the 2-qubit XX Hamiltonian has a Clifford point at
        // the global minimum −1.
        let h: PauliOp = "XX".parse().unwrap();
        let ansatz = EfficientSu2::new(2, 1);
        let objective = CliffordObjective::new(&ansatz, &h);
        let mut best = f64::INFINITY;
        // Exhaust the first-layer RY on qubit 0 with everything else 0.
        for k in 0..4 {
            let mut cfg = vec![0usize; 8];
            cfg[0] = k;
            best = best.min(objective.evaluate(&cfg).energy);
        }
        assert_eq!(best, -1.0);
    }

    #[test]
    fn penalty_pushes_off_sector_states_up() {
        // Penalize ⟨(Z − 1)²⟩ on a 1-qubit problem: |1⟩ (Z = −1) costs 4w.
        let h: PauliOp = "0*I".parse().unwrap();
        let z: PauliOp = "Z".parse().unwrap();
        let ansatz = EfficientSu2::new(1, 0);
        let objective =
            CliffordObjective::new(&ansatz, &h).with_penalty(Penalty::new("test", &z, 1.0, 0.5));
        // Ry(π) flips to |1⟩.
        let flipped = objective.evaluate(&[2, 0]);
        assert!((flipped.penalized - 2.0).abs() < 1e-12, "{flipped:?}");
        let stay = objective.evaluate(&[0, 0]);
        assert!(stay.penalized.abs() < 1e-12);
        // Raw energy is untouched by penalties.
        assert_eq!(flipped.energy, 0.0);
    }

    #[test]
    fn compiled_template_matches_fallback_lowering() {
        // The same objective evaluated through the compiled template and
        // through per-candidate lowering must agree bit-for-bit.
        let h: PauliOp = "0.5*XXII + 0.25*ZZZZ - 0.1*YIYI + 0.7*IZIZ".parse().unwrap();
        let ansatz = EfficientSu2::new(4, 1);
        let compiled = CliffordObjective::new(&ansatz, &h);
        assert!(compiled.is_compiled());
        let mut fallback = CliffordObjective::new(&ansatz, &h);
        fallback.template = None;
        for seed in 0u64..32 {
            let config: Vec<usize> =
                (0..16).map(|i| ((seed.wrapping_mul(0x9E37_79B9) >> i) & 3) as usize).collect();
            let a = compiled.evaluate(&config);
            let b = fallback.evaluate(&config);
            assert_eq!(a.energy.to_bits(), b.energy.to_bits(), "{config:?}");
            assert_eq!(a.penalized.to_bits(), b.penalized.to_bits(), "{config:?}");
        }
    }

    #[test]
    fn batch_evaluation_matches_serial_bitwise() {
        let h: PauliOp = "0.5*XX + 0.25*ZZ - 0.1*YI".parse().unwrap();
        let z: PauliOp = "ZI".parse().unwrap();
        let ansatz = EfficientSu2::new(2, 1);
        let objective =
            CliffordObjective::new(&ansatz, &h).with_penalty(Penalty::new("z", &z, 1.0, 0.3));
        let configs: Vec<Vec<usize>> = (0..64u64)
            .map(|code| (0..8).map(|i| ((code.wrapping_mul(31) >> (2 * i)) & 3) as usize).collect())
            .collect();
        // Force multi-worker sharding so the threaded path is exercised
        // even on a single-core host (evaluate_batch would stay serial).
        for workers in [1usize, 3, 8] {
            let batch = objective.evaluate_batch_with_workers(&configs, workers);
            assert_eq!(batch.len(), configs.len());
            for (config, value) in configs.iter().zip(&batch) {
                let serial = objective.evaluate(config);
                assert_eq!(value.energy.to_bits(), serial.energy.to_bits(), "{workers} workers");
                assert_eq!(value.penalized.to_bits(), serial.penalized.to_bits());
            }
        }
    }

    #[test]
    fn term_expectations_are_quantized() {
        let h: PauliOp = "0.5*XX + 0.25*ZZ - 0.1*YI".parse().unwrap();
        let ansatz = EfficientSu2::new(2, 1);
        let objective = CliffordObjective::new(&ansatz, &h);
        for (_, _, e) in objective.term_expectations(&[1, 2, 3, 0, 1, 2, 3, 0]) {
            assert!(e == -1 || e == 0 || e == 1);
        }
    }
}
