//! The CAFQA classical objective: stabilizer-state energy plus sector
//! penalties, evaluated by tableau simulation (paper §3, steps 2–7).

use cafqa_circuit::Ansatz;
use cafqa_clifford::Tableau;
use cafqa_linalg::Complex64;
use cafqa_pauli::{PauliOp, PauliString};

/// A quadratic sector penalty `weight · ⟨(O − target)²⟩`, the paper's
/// mechanism for imposing electron-count (and spin) preservation directly
/// on the objective function (§3 step 5, §7.1.1 for the H2+ cation).
#[derive(Debug, Clone)]
pub struct Penalty {
    /// Human-readable label ("electron count", "sz", …).
    pub label: String,
    /// The squared shifted operator `(O − target)²`, precomputed.
    squared: PauliOp,
    /// Penalty weight.
    pub weight: f64,
}

impl Penalty {
    /// Builds a penalty from the operator, its target eigenvalue and a
    /// weight. The squared operator is formed once, symbolically.
    pub fn new(label: impl Into<String>, op: &PauliOp, target: f64, weight: f64) -> Self {
        let mut shifted = op.clone();
        shifted.add_term(Complex64::from(-target), PauliString::identity(op.num_qubits()));
        let squared = shifted.mul_op(&shifted).pruned(1e-12);
        Penalty { label: label.into(), squared, weight }
    }

    /// The penalty value on a prepared stabilizer state.
    pub fn value(&self, tableau: &Tableau) -> f64 {
        self.weight * tableau.expectation(&self.squared)
    }

    /// The penalty operator (for non-stabilizer evaluation paths).
    pub fn squared_op(&self) -> &PauliOp {
        &self.squared
    }
}

/// The classical evaluation of one Clifford-ansatz configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObjectiveValue {
    /// The raw Hamiltonian expectation `⟨H⟩` (what gets reported).
    pub energy: f64,
    /// `⟨H⟩` plus all penalties (what gets minimized).
    pub penalized: f64,
}

/// Hamiltonians above this term count are evaluated with worker threads.
const PARALLEL_TERM_THRESHOLD: usize = 4096;

/// The CAFQA objective: binds discrete Clifford indices into the ansatz,
/// simulates the stabilizer state, and returns `⟨H⟩` plus penalties.
pub struct CliffordObjective<'a> {
    ansatz: &'a dyn Ansatz,
    hamiltonian: &'a PauliOp,
    /// Flat copy of the Hamiltonian for chunked parallel evaluation.
    terms: Vec<(PauliString, f64)>,
    penalties: Vec<Penalty>,
}

impl<'a> CliffordObjective<'a> {
    /// Creates the objective.
    ///
    /// # Panics
    ///
    /// Panics if the Hamiltonian width differs from the ansatz width.
    pub fn new(ansatz: &'a dyn Ansatz, hamiltonian: &'a PauliOp) -> Self {
        assert_eq!(
            ansatz.num_qubits(),
            hamiltonian.num_qubits(),
            "ansatz/hamiltonian width mismatch"
        );
        let terms = hamiltonian.iter().map(|(p, c)| (*p, c.re)).collect();
        CliffordObjective { ansatz, hamiltonian, terms, penalties: Vec::new() }
    }

    /// `⟨H⟩` on a prepared tableau, chunked over worker threads for the
    /// large Hamiltonians of the 18/34-qubit systems (DESIGN.md §5).
    fn hamiltonian_expectation(&self, tableau: &Tableau) -> f64 {
        if self.terms.len() < PARALLEL_TERM_THRESHOLD {
            return self
                .terms
                .iter()
                .map(|(p, c)| c * f64::from(tableau.expectation_pauli(p)))
                .sum();
        }
        let workers = std::thread::available_parallelism().map_or(2, |n| n.get()).min(8);
        let chunk = self.terms.len().div_ceil(workers);
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .terms
                .chunks(chunk)
                .map(|terms| {
                    scope.spawn(move || {
                        terms
                            .iter()
                            .map(|(p, c)| c * f64::from(tableau.expectation_pauli(p)))
                            .sum::<f64>()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("worker panicked")).sum()
        })
    }

    /// Adds a sector penalty.
    pub fn with_penalty(mut self, penalty: Penalty) -> Self {
        assert_eq!(
            penalty.squared.num_qubits(),
            self.hamiltonian.num_qubits(),
            "penalty width mismatch"
        );
        self.penalties.push(penalty);
        self
    }

    /// Number of discrete search parameters.
    pub fn num_parameters(&self) -> usize {
        self.ansatz.num_parameters()
    }

    /// Evaluates one discrete configuration (indices into the four
    /// Clifford angles). Exact, noise-free, and polynomial-time — the
    /// whole point of the paper.
    ///
    /// # Panics
    ///
    /// Panics if `config` has the wrong length (ansatz contract).
    pub fn evaluate(&self, config: &[usize]) -> ObjectiveValue {
        let circuit = self.ansatz.bind_clifford(config);
        let tableau = Tableau::from_circuit(&circuit)
            .expect("clifford-bound ansatz must be a Clifford circuit");
        let energy = self.hamiltonian_expectation(&tableau);
        let penalized = energy + self.penalties.iter().map(|p| p.value(&tableau)).sum::<f64>();
        ObjectiveValue { energy, penalized }
    }

    /// Per-Pauli-term expectations of the Hamiltonian on a configuration,
    /// in deterministic term order — the data behind the paper's Fig. 6.
    pub fn term_expectations(&self, config: &[usize]) -> Vec<(PauliString, f64, i8)> {
        let circuit = self.ansatz.bind_clifford(config);
        let tableau = Tableau::from_circuit(&circuit)
            .expect("clifford-bound ansatz must be a Clifford circuit");
        self.hamiltonian.iter().map(|(p, c)| (*p, c.re, tableau.expectation_pauli(p))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cafqa_circuit::EfficientSu2;

    #[test]
    fn xx_microbenchmark_reaches_minus_one() {
        // Paper Fig. 5: the 2-qubit XX Hamiltonian has a Clifford point at
        // the global minimum −1.
        let h: PauliOp = "XX".parse().unwrap();
        let ansatz = EfficientSu2::new(2, 1);
        let objective = CliffordObjective::new(&ansatz, &h);
        let mut best = f64::INFINITY;
        // Exhaust the first-layer RY on qubit 0 with everything else 0.
        for k in 0..4 {
            let mut cfg = vec![0usize; 8];
            cfg[0] = k;
            best = best.min(objective.evaluate(&cfg).energy);
        }
        assert_eq!(best, -1.0);
    }

    #[test]
    fn penalty_pushes_off_sector_states_up() {
        // Penalize ⟨(Z − 1)²⟩ on a 1-qubit problem: |1⟩ (Z = −1) costs 4w.
        let h: PauliOp = "0*I".parse().unwrap();
        let z: PauliOp = "Z".parse().unwrap();
        let ansatz = EfficientSu2::new(1, 0);
        let objective =
            CliffordObjective::new(&ansatz, &h).with_penalty(Penalty::new("test", &z, 1.0, 0.5));
        // Ry(π) flips to |1⟩.
        let flipped = objective.evaluate(&[2, 0]);
        assert!((flipped.penalized - 2.0).abs() < 1e-12, "{flipped:?}");
        let stay = objective.evaluate(&[0, 0]);
        assert!(stay.penalized.abs() < 1e-12);
        // Raw energy is untouched by penalties.
        assert_eq!(flipped.energy, 0.0);
    }

    #[test]
    fn term_expectations_are_quantized() {
        let h: PauliOp = "0.5*XX + 0.25*ZZ - 0.1*YI".parse().unwrap();
        let ansatz = EfficientSu2::new(2, 1);
        let objective = CliffordObjective::new(&ansatz, &h);
        for (_, _, e) in objective.term_expectations(&[1, 2, 3, 0, 1, 2, 3, 0]) {
            assert!(e == -1 || e == 0 || e == 1);
        }
    }
}
