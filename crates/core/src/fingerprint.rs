//! Canonical content-addressed fingerprints for CAFQA jobs — the cache
//! key of the serving layer (`cafqa-serve`).
//!
//! A job's identity is everything that can change a bit of its
//! [`CafqaResult`](crate::CafqaResult): the Hamiltonian's term set in
//! canonical (sorted mask-form) order with exact coefficient bits, the
//! penalties, the ansatz shape, the seed configurations, and the
//! determinism-relevant [`CafqaOptions`](crate::CafqaOptions) fields.
//! Two submissions with equal [`job_fingerprint`] produce bit-identical
//! results by the workspace determinism contracts, so a server may
//! return a cached result for an exact fingerprint match without
//! recompute.
//!
//! [`family_fingerprint`] is the *structure-only* companion: the same
//! hash with every Hamiltonian coefficient masked out. Jobs in one
//! family differ only in term coefficients — e.g. neighbouring bond
//! lengths of the same molecule, whose mask-form term sets coincide —
//! which is exactly the population that warm-starting from a cached
//! incumbent helps ([`coefficient_vector`] gives the distance metric
//! used to pick the nearest cached neighbour).
//!
//! Fields that [`run_cafqa_on`](crate::run_cafqa_on) never reads —
//! `number_penalty`, `sz_penalty`, `s2_penalty`, `seed_hf`, which only
//! steer how [`MolecularCafqa`](crate::MolecularCafqa) *builds* its
//! penalty and seed lists — are deliberately excluded: the explicit
//! penalty and seed lists are hashed instead, so two call paths that
//! hand the runner identical inputs share a fingerprint.

use cafqa_circuit::Ansatz;
use cafqa_pauli::PauliOp;

use crate::ising::IsingFastPath;
use crate::objective::Penalty;
use crate::runner::CafqaOptions;

/// A streaming FNV-1a 64-bit hasher — dependency-free, stable across
/// hosts and releases (unlike `DefaultHasher`), which is what a
/// content-addressed cache key must be.
#[derive(Debug, Clone)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv1a {
    /// The FNV-1a offset basis.
    pub fn new() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    /// Folds raw bytes into the hash.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// Folds a `u64` (little-endian bytes).
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Folds a `usize` widened to `u64`, so 32- and 64-bit hosts agree.
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Folds an `f64` by its exact bit pattern (`-0.0 != 0.0`, NaN
    /// payloads distinguish — bit-identity is the contract, not numeric
    /// equality).
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// The canonical term list of a [`PauliOp`]: `(x_mask, z_mask, re, im)`
/// sorted by `(x_mask, z_mask)`. [`PauliOp`] already deduplicates
/// strings, so the sort gives every term set one representative
/// regardless of insertion order.
fn canonical_terms(op: &PauliOp) -> Vec<(u64, u64, f64, f64)> {
    let mut terms: Vec<(u64, u64, f64, f64)> =
        op.iter().map(|(s, c)| (s.x_mask(), s.z_mask(), c.re, c.im)).collect();
    terms.sort_unstable_by_key(|&(x, z, _, _)| (x, z));
    terms
}

/// Folds one operator into `hash` — masks always, coefficient bits only
/// when `with_coefficients`.
fn write_op(hash: &mut Fnv1a, op: &PauliOp, with_coefficients: bool) {
    hash.write_usize(op.num_qubits());
    let terms = canonical_terms(op);
    hash.write_usize(terms.len());
    for (x, z, re, im) in terms {
        hash.write_u64(x);
        hash.write_u64(z);
        if with_coefficients {
            hash.write_f64(re);
            hash.write_f64(im);
        }
    }
}

/// Folds the search-relevant [`CafqaOptions`] fields (see the module
/// notes for which fields are deliberately excluded).
fn write_opts(hash: &mut Fnv1a, opts: &CafqaOptions) {
    hash.write_usize(opts.warmup);
    hash.write_usize(opts.iterations);
    hash.write_u64(opts.seed);
    hash.write_usize(opts.patience);
    hash.write_usize(opts.polish_sweeps);
    hash.write_usize(opts.proposals_per_refit);
    hash.write_usize(opts.forest_window);
    hash.write_usize(opts.polish_screen_top);
    hash.write_f64(opts.screen_tolerance);
    hash.write_usize(opts.kt_rank_top);
    hash.write_u64(match opts.ising_fast_path {
        IsingFastPath::Auto => 0,
        IsingFastPath::Off => 1,
        IsingFastPath::Force => 2,
    });
}

/// Folds the parts of a job's identity that are shared between the
/// exact and the family fingerprint: ansatz shape, penalties, seeds and
/// options. Penalty operators always hash with coefficients — a near
/// hit must share the *same* sector constraints, only the Hamiltonian
/// coefficients may drift.
fn write_context(
    hash: &mut Fnv1a,
    ansatz: &dyn Ansatz,
    penalties: &[Penalty],
    seeds: &[Vec<usize>],
    opts: &CafqaOptions,
) {
    hash.write_usize(ansatz.num_qubits());
    hash.write_usize(ansatz.num_parameters());
    hash.write_usize(penalties.len());
    for p in penalties {
        hash.write_usize(p.label.len());
        hash.write(p.label.as_bytes());
        hash.write_f64(p.weight);
        write_op(hash, p.squared_op(), true);
    }
    hash.write_usize(seeds.len());
    for seed in seeds {
        hash.write_usize(seed.len());
        for &v in seed {
            hash.write_usize(v);
        }
    }
    write_opts(hash, opts);
}

/// The canonical content hash of a complete CAFQA job. Equal
/// fingerprints ⇒ bit-identical [`CafqaResult`](crate::CafqaResult)s
/// (at any worker count), by the workspace determinism contracts.
pub fn job_fingerprint(
    ansatz: &dyn Ansatz,
    hamiltonian: &PauliOp,
    penalties: &[Penalty],
    seeds: &[Vec<usize>],
    opts: &CafqaOptions,
) -> u64 {
    let mut hash = Fnv1a::new();
    hash.write_u64(0x0CAF_9A0B); // domain tag: exact job key
    write_op(&mut hash, hamiltonian, true);
    write_context(&mut hash, ansatz, penalties, seeds, opts);
    hash.finish()
}

/// The structure-only hash of a job: identical to [`job_fingerprint`]
/// except the Hamiltonian coefficient bits are excluded. Two jobs in the
/// same family share term masks, penalties, ansatz, seeds and options —
/// the population where warm-starting from a cached incumbent is sound
/// (the incumbent is just a seed configuration; the never-worse-than-
/// seed guarantee does the rest).
pub fn family_fingerprint(
    ansatz: &dyn Ansatz,
    hamiltonian: &PauliOp,
    penalties: &[Penalty],
    seeds: &[Vec<usize>],
    opts: &CafqaOptions,
) -> u64 {
    let mut hash = Fnv1a::new();
    hash.write_u64(0x0CAF_9AFA); // domain tag: family key
    write_op(&mut hash, hamiltonian, false);
    write_context(&mut hash, ansatz, penalties, seeds, opts);
    hash.finish()
}

/// The real coefficient vector of an operator in canonical term order —
/// the embedding that makes "nearby coefficients" a plain L2 distance.
/// Vectors are comparable exactly when the two operators share a family
/// fingerprint (same sorted mask sequence ⇒ same alignment).
pub fn coefficient_vector(op: &PauliOp) -> Vec<f64> {
    canonical_terms(op).into_iter().map(|(_, _, re, _)| re).collect()
}

/// Euclidean distance between two aligned coefficient vectors; `None`
/// when the lengths differ (not the same family).
pub fn coefficient_distance(a: &[f64], b: &[f64]) -> Option<f64> {
    if a.len() != b.len() {
        return None;
    }
    Some(a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>().sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cafqa_circuit::EfficientSu2;
    use cafqa_linalg::Complex64;
    use cafqa_pauli::PauliString;

    fn op(terms: &[(f64, &str)]) -> PauliOp {
        let n = terms[0].1.len();
        let mut h = PauliOp::zero(n);
        for &(w, s) in terms {
            h.add_term(Complex64::from(w), s.parse::<PauliString>().unwrap());
        }
        h
    }

    #[test]
    fn fingerprint_is_insertion_order_invariant() {
        let ansatz = EfficientSu2::new(3, 1);
        let opts = CafqaOptions::quick();
        let a = op(&[(0.5, "ZZI"), (-0.25, "IXZ"), (1.0, "ZII")]);
        let b = op(&[(1.0, "ZII"), (0.5, "ZZI"), (-0.25, "IXZ")]);
        assert_eq!(
            job_fingerprint(&ansatz, &a, &[], &[], &opts),
            job_fingerprint(&ansatz, &b, &[], &[], &opts),
        );
    }

    #[test]
    fn fingerprint_separates_every_identity_component() {
        let ansatz = EfficientSu2::new(3, 1);
        let opts = CafqaOptions::quick();
        let h = op(&[(0.5, "ZZI"), (-0.25, "IXZ")]);
        let base = job_fingerprint(&ansatz, &h, &[], &[], &opts);
        // Coefficient change.
        let h2 = op(&[(0.5 + 1e-9, "ZZI"), (-0.25, "IXZ")]);
        assert_ne!(base, job_fingerprint(&ansatz, &h2, &[], &[], &opts));
        // Options change (each determinism-relevant field must bite).
        for delta in [
            CafqaOptions { warmup: opts.warmup + 1, ..opts.clone() },
            CafqaOptions { iterations: opts.iterations + 1, ..opts.clone() },
            CafqaOptions { seed: opts.seed ^ 1, ..opts.clone() },
            CafqaOptions { patience: 5, ..opts.clone() },
            CafqaOptions { polish_sweeps: opts.polish_sweeps + 1, ..opts.clone() },
            CafqaOptions { proposals_per_refit: opts.proposals_per_refit + 1, ..opts.clone() },
            CafqaOptions { forest_window: 7, ..opts.clone() },
            CafqaOptions { polish_screen_top: 3, ..opts.clone() },
            CafqaOptions { screen_tolerance: 1e-3, ..opts.clone() },
            CafqaOptions { kt_rank_top: 2, ..opts.clone() },
            CafqaOptions { ising_fast_path: IsingFastPath::Off, ..opts.clone() },
        ] {
            assert_ne!(base, job_fingerprint(&ansatz, &h, &[], &[], &delta));
        }
        // Non-determinism-relevant fields must NOT bite (the runner never
        // reads them; MolecularCafqa folds them into explicit penalties).
        for same in [
            CafqaOptions { number_penalty: 9.0, ..opts.clone() },
            CafqaOptions { sz_penalty: 2.0, ..opts.clone() },
            CafqaOptions { seed_hf: !opts.seed_hf, ..opts.clone() },
        ] {
            assert_eq!(base, job_fingerprint(&ansatz, &h, &[], &[], &same));
        }
        // Seed configurations.
        assert_ne!(base, job_fingerprint(&ansatz, &h, &[], &[vec![0; 12]], &opts));
        // Ansatz shape.
        let wider = EfficientSu2::new(3, 2);
        assert_ne!(base, job_fingerprint(&wider, &h, &[], &[], &opts));
        // Penalties.
        let pen = Penalty::new("n", &op(&[(1.0, "ZII")]), 1.0, 0.5);
        assert_ne!(base, job_fingerprint(&ansatz, &h, &[pen], &[], &opts));
    }

    #[test]
    fn family_hash_ignores_coefficients_only() {
        let ansatz = EfficientSu2::new(3, 1);
        let opts = CafqaOptions::quick();
        let a = op(&[(0.5, "ZZI"), (-0.25, "IXZ")]);
        let b = op(&[(0.51, "ZZI"), (-0.27, "IXZ")]);
        let c = op(&[(0.5, "ZZI"), (-0.25, "IXY")]);
        assert_eq!(
            family_fingerprint(&ansatz, &a, &[], &[], &opts),
            family_fingerprint(&ansatz, &b, &[], &[], &opts),
            "coefficient drift stays in-family"
        );
        assert_ne!(
            family_fingerprint(&ansatz, &a, &[], &[], &opts),
            family_fingerprint(&ansatz, &c, &[], &[], &opts),
            "mask change leaves the family"
        );
        assert_ne!(
            job_fingerprint(&ansatz, &a, &[], &[], &opts),
            job_fingerprint(&ansatz, &b, &[], &[], &opts),
            "exact key still separates them"
        );
        let va = coefficient_vector(&a);
        let vb = coefficient_vector(&b);
        let d = coefficient_distance(&va, &vb).unwrap();
        assert!((d - (0.01f64 * 0.01 + 0.02 * 0.02).sqrt()).abs() < 1e-12);
        assert_eq!(coefficient_distance(&va, &[1.0]), None);
    }
}
