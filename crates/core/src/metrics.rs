//! The paper's evaluation metrics (§6 "Evaluation Metrics").

use serde::Serialize;

/// Chemical accuracy: 1.6·10⁻³ Hartree (paper §2.1).
pub const CHEMICAL_ACCURACY: f64 = 1.6e-3;

/// Floor applied to error ratios so a numerically-exact CAFQA result
/// yields a large but finite relative accuracy (the paper reports up to
/// 3.4·10⁵×).
pub const ERROR_FLOOR: f64 = 1e-9;

/// Energy-estimation accuracy: `|estimate − exact|` in Hartree (metric 2).
pub fn energy_error(estimate: f64, exact: f64) -> f64 {
    (estimate - exact).abs()
}

/// Percentage of the correlation energy `E_HF − E_exact` recovered by an
/// estimate (metric 3), clamped to `[0, 100]`.
pub fn correlation_recovered(estimate: f64, hf: f64, exact: f64) -> f64 {
    let denom = hf - exact;
    if denom.abs() < 1e-12 {
        return 100.0;
    }
    (100.0 * (hf - estimate) / denom).clamp(0.0, 100.0)
}

/// Relative accuracy of CAFQA vs the state-of-the-art HF baseline
/// (metric 4): `err_HF / err_CAFQA`, error-floored.
pub fn relative_accuracy(hf_error: f64, cafqa_error: f64) -> f64 {
    hf_error.max(ERROR_FLOOR) / cafqa_error.max(ERROR_FLOOR)
}

/// Geometric mean of positive values (Fig. 13's "Geomean" bar).
///
/// # Panics
///
/// Panics on an empty slice or non-positive values.
pub fn geometric_mean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geometric mean of nothing");
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "geometric mean needs positive values");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

/// Per-bond-length record for dissociation-curve experiments
/// (Figs. 8–11): every number the three panel rows need.
#[derive(Debug, Clone, Serialize)]
pub struct DissociationPoint {
    /// Bond length in Å.
    pub bond: f64,
    /// CAFQA initialization energy.
    pub cafqa: f64,
    /// Hartree-Fock energy.
    pub hf: f64,
    /// Exact (FCI) energy, when available.
    pub exact: Option<f64>,
    /// Whether SCF converged at this geometry.
    pub scf_converged: bool,
}

impl DissociationPoint {
    /// CAFQA error vs exact.
    pub fn cafqa_error(&self) -> Option<f64> {
        self.exact.map(|e| energy_error(self.cafqa, e))
    }

    /// HF error vs exact.
    pub fn hf_error(&self) -> Option<f64> {
        self.exact.map(|e| energy_error(self.hf, e))
    }

    /// Correlation energy recovered by CAFQA over HF (%).
    pub fn recovered(&self) -> Option<f64> {
        self.exact.map(|e| correlation_recovered(self.cafqa, self.hf, e))
    }

    /// Relative accuracy vs HF at this point.
    pub fn relative(&self) -> Option<f64> {
        match (self.hf_error(), self.cafqa_error()) {
            (Some(h), Some(c)) => Some(relative_accuracy(h, c)),
            _ => None,
        }
    }
}

/// Aggregates per-molecule relative accuracies into the paper's Fig. 13
/// "Average" and "Maximum" bars.
pub fn summarize_relative(points: &[DissociationPoint]) -> Option<(f64, f64)> {
    let rel: Vec<f64> = points.iter().filter_map(DissociationPoint::relative).collect();
    if rel.is_empty() {
        return None;
    }
    let avg = rel.iter().sum::<f64>() / rel.len() as f64;
    let max = rel.iter().cloned().fold(f64::MIN, f64::max);
    Some((avg, max))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correlation_recovery_bounds() {
        // HF −1.0, exact −1.2: estimate at exact recovers 100%.
        assert_eq!(correlation_recovered(-1.2, -1.0, -1.2), 100.0);
        assert_eq!(correlation_recovered(-1.0, -1.0, -1.2), 0.0);
        assert!((correlation_recovered(-1.1, -1.0, -1.2) - 50.0).abs() < 1e-12);
        // Below-exact estimates clamp at 100.
        assert_eq!(correlation_recovered(-1.3, -1.0, -1.2), 100.0);
    }

    #[test]
    fn relative_accuracy_floors_tiny_errors() {
        let r = relative_accuracy(1e-1, 0.0);
        assert!(r.is_finite());
        assert!(r >= 1e7);
        assert!((relative_accuracy(0.2, 0.1) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn geometric_mean_matches_paper_style() {
        assert!((geometric_mean(&[4.0, 16.0]) - 8.0).abs() < 1e-12);
        assert!((geometric_mean(&[6.4]) - 6.4).abs() < 1e-12);
    }

    #[test]
    fn dissociation_point_metrics() {
        let p = DissociationPoint {
            bond: 2.0,
            cafqa: -1.19,
            hf: -1.0,
            exact: Some(-1.2),
            scf_converged: true,
        };
        assert!((p.cafqa_error().unwrap() - 0.01).abs() < 1e-12);
        assert!((p.hf_error().unwrap() - 0.2).abs() < 1e-12);
        assert!((p.recovered().unwrap() - 95.0).abs() < 1e-9);
        assert!((p.relative().unwrap() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn summary_over_points() {
        let mk = |cafqa: f64| DissociationPoint {
            bond: 1.0,
            cafqa,
            hf: -1.0,
            exact: Some(-1.2),
            scf_converged: true,
        };
        let (avg, max) = summarize_relative(&[mk(-1.19), mk(-1.15)]).unwrap();
        assert!(max >= avg);
        assert!(summarize_relative(&[]).is_none());
    }
}
