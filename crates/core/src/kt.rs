//! CAFQA+kT: the beyond-Clifford search (paper §8, Fig. 16).
//!
//! The angle grid per parameter widens from 4 Clifford angles to 8
//! eighth-turns (`k·π/4`); every odd index is a non-Clifford rotation and
//! costs one branch doubling in the stabilizer-rank engine. A budget of
//! at most `k_max` odd indices keeps the configuration classically
//! simulable (`2^k` Clifford branches).
//!
//! This module runs that search on the compiled/engine stack: candidates
//! evaluate on [`BranchEnsemble`] (tableau-backed, so the search works at
//! H2O/Cr2 qubit counts where dense branch summation cannot run), batches
//! shard over an [`ExecEngine`], and the Bayesian layer samples a
//! *feasible-by-construction* genome instead of rejecting over-budget
//! configurations with a penalty constant — see
//! [`run_cafqa_kt_on`](run_cafqa_kt_on#feasibility-and-determinism).

use std::sync::Arc;

use cafqa_bayesopt::{minimize_with, BoOptions, ForestOptions, SearchSpace};
use cafqa_circuit::{Ansatz, CompiledAnsatz};
use cafqa_clifford::{BranchEnsemble, MAX_BRANCH_GATES};
use cafqa_pauli::PauliOp;

use crate::engine::ExecEngine;
use crate::objective::{ObjectiveValue, Penalty};
use crate::runner::{chain_accept, run_cafqa_on, CafqaOptions, SearchPoint};

/// Why a CAFQA+kT search could not start.
///
/// These are *input* errors: once a search is running, every sampled
/// configuration is feasible by construction and the search itself
/// cannot fail (the old implementation instead panicked after the fact
/// when the incumbent turned out to be over budget).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KtError {
    /// `k_max` exceeds the stabilizer-rank engine's branch budget
    /// ([`MAX_BRANCH_GATES`]); such a search could sample configurations
    /// no backend can evaluate.
    BudgetTooLarge {
        /// The requested T budget.
        k_max: usize,
        /// The largest supported budget.
        max: usize,
    },
    /// A seed configuration uses more non-Clifford rotations than
    /// `k_max` allows. Widen the budget, or re-seed with
    /// [`widen_clifford_config`] variants that respect it.
    SeedInfeasible {
        /// Index of the offending seed in the `seeds` slice.
        seed: usize,
        /// Its non-Clifford rotation count.
        t_count: usize,
        /// The budget it violates.
        k_max: usize,
    },
}

impl std::fmt::Display for KtError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            KtError::BudgetTooLarge { k_max, max } => {
                write!(f, "T budget k_max = {k_max} exceeds the branch-engine limit of {max}")
            }
            KtError::SeedInfeasible { seed, t_count, k_max } => {
                write!(
                    f,
                    "seed {seed} uses {t_count} non-Clifford rotations, over the budget k_max = {k_max}"
                )
            }
        }
    }
}

impl std::error::Error for KtError {}

/// The outcome of a CAFQA+kT search.
#[derive(Debug, Clone)]
pub struct CafqaKtResult {
    /// Best configuration over the 8-ary grid.
    pub best_config: Vec<usize>,
    /// Raw `⟨H⟩` of the best configuration.
    pub energy: f64,
    /// Penalized objective value of the best configuration.
    pub penalized: f64,
    /// Number of non-Clifford rotations in the best configuration
    /// (`≤ k_max`).
    pub t_count: usize,
    /// Full search trace (BO phase then polish), penalized-objective
    /// bookkeeping as in [`crate::CafqaResult::trace`].
    pub trace: Vec<SearchPoint>,
    /// 1-based evaluation index that first reached the final best.
    pub iterations_to_best: usize,
    /// Evaluations that actually ran a branch simulation. With the
    /// feasibility-aware sampler this is *every* evaluation.
    pub feasible_evaluations: usize,
    /// Proposals discarded for exceeding the T budget before any
    /// simulation ran. Always 0 here — the genome encoding cannot
    /// express an over-budget configuration — but the frozen rejection
    ///-based reference implementation reports nonzero counts, and the
    /// split keeps the two comparable.
    pub rejected_evaluations: usize,
    /// Evaluations spent in the polish endgame (the tail of `trace`).
    pub polish_evaluations: usize,
    /// XOR classes skipped by the quadratic-Clifford bound screen across
    /// every branch-pair sum of the search. Always 0 when
    /// [`CafqaOptions::screen_tolerance`] is 0. Integer accumulation is
    /// order-independent, so the counter is deterministic at any worker
    /// count, like the trace itself.
    pub screened_classes: u64,
    /// Polish candidate moves pruned by bound ranking before any exact
    /// evaluation ran ([`CafqaOptions::kt_rank_top`]). Always 0 when
    /// ranking is off.
    pub screened_moves: u64,
}

/// Number of odd (non-Clifford) indices in an 8-ary configuration.
pub fn t_count_of(config: &[usize]) -> usize {
    config.iter().filter(|&&k| k % 2 == 1).count()
}

/// Converts a Clifford (4-ary) configuration to the 8-ary grid.
pub fn widen_clifford_config(config: &[usize]) -> Vec<usize> {
    config.iter().map(|&k| 2 * k).collect()
}

/// The feasible genome space for `d` parameters and budget `k_max`:
/// `d` quaternary Clifford dimensions followed by `k_max` *insertion*
/// dimensions of cardinality `2d + 1` (0 = no insertion; `v ≥ 1` turns
/// parameter `(v−1)/2` by `+π/4` or `−π/4`).
fn kt_search_space(d: usize, k_max: usize) -> SearchSpace {
    let mut cardinalities = vec![4usize; d];
    cardinalities.resize(d + k_max, 2 * d + 1);
    SearchSpace { cardinalities }
}

/// Decodes a genome into an 8-ary configuration. Insertions apply
/// sequentially, so two insertions on one parameter cancel back to a
/// Clifford angle — the odd-index count never exceeds the number of
/// insertion dimensions, which is why every genome is feasible.
fn decode_genome(genome: &[usize], d: usize) -> Vec<usize> {
    let mut config: Vec<usize> = genome[..d].iter().map(|&k| 2 * k).collect();
    for &v in &genome[d..] {
        if v == 0 {
            continue;
        }
        let param = (v - 1) / 2;
        let delta = if (v - 1) % 2 == 0 { 1 } else { 7 };
        config[param] = (config[param] + delta) % 8;
    }
    config
}

/// Encodes an 8-ary configuration as a genome (Clifford floor plus one
/// `+π/4` insertion per odd index), or reports its T count when that
/// count exceeds the budget.
fn encode_seed(config: &[usize], d: usize, k_max: usize) -> Result<Vec<usize>, usize> {
    assert_eq!(config.len(), d, "seed dimensionality mismatch");
    let mut genome = Vec::with_capacity(d + k_max);
    let mut insertions = Vec::new();
    for (param, &k) in config.iter().enumerate() {
        let k = k % 8;
        genome.push(k / 2);
        if k % 2 == 1 {
            insertions.push(2 * param + 1);
        }
    }
    if insertions.len() > k_max {
        return Err(insertions.len());
    }
    insertions.resize(k_max, 0);
    genome.extend(insertions);
    Ok(genome)
}

/// `(x mask, z mask, real coefficient)` of one Pauli term — the flat
/// form the branch-pair kernel consumes.
type MaskTerm = (u64, u64, f64);

/// `(weight, squared-op terms)` of one penalty, in mask form.
type MaskPenalty = (f64, Vec<MaskTerm>);

/// Flattens an operator into mask terms.
fn masks_of(op: &PauliOp) -> Vec<MaskTerm> {
    op.iter().map(|(p, c)| (p.x_mask(), p.z_mask(), c.re)).collect()
}

/// Evaluates one prepared branch ensemble against the Hamiltonian terms
/// and penalties. Terms sum in storage order and classes in one fixed
/// full-range [`BranchEnsemble::pair_sum`] per term, so the value is a
/// pure function of `(state, terms)` — the worker-count bit-identity of
/// the whole search reduces to this.
fn value_of(
    terms: &[MaskTerm],
    penalties: &[MaskPenalty],
    state: &BranchEnsemble,
) -> ObjectiveValue {
    let frames = state.frames();
    let classes = frames.num_branches();
    let mut energy = 0.0;
    for &(px, pz, c) in terms {
        energy += c * state.pair_sum(&frames, px, pz, 0..classes);
    }
    let mut penalized = energy;
    for (weight, ops) in penalties {
        let mut v = 0.0;
        for &(px, pz, c) in ops {
            v += c * state.pair_sum(&frames, px, pz, 0..classes);
        }
        penalized += weight * v;
    }
    ObjectiveValue { energy, penalized }
}

/// The per-term class tolerance: a class may be skipped only when its
/// bound, scaled by the term's (effective) coefficient magnitude, cannot
/// move the objective past `tol` — i.e. `bound(c) ≤ tol / |coeff|`.
#[inline]
fn term_tol(tol: f64, coeff: f64) -> f64 {
    if coeff == 0.0 {
        f64::INFINITY
    } else {
        tol / coeff.abs()
    }
}

/// [`value_of`] behind the quadratic-Clifford bound screen: each term's
/// class loop runs [`BranchEnsemble::pair_sum_screened`] at the term's
/// [`term_tol`] (penalty terms screen at their weighted coefficient), and
/// the second return is the total skipped-class count. `tol = 0.0`
/// delegates to [`value_of`] — the exact path stays frozen, bit for bit,
/// with zero screening overhead.
fn value_of_screened(
    terms: &[MaskTerm],
    penalties: &[MaskPenalty],
    state: &BranchEnsemble,
    tol: f64,
) -> (ObjectiveValue, u64) {
    if tol == 0.0 {
        return (value_of(terms, penalties, state), 0);
    }
    let frames = state.frames();
    let classes = frames.num_branches();
    let mut skipped = 0u64;
    let mut energy = 0.0;
    for &(px, pz, c) in terms {
        let s = state.pair_sum_screened(&frames, px, pz, 0..classes, term_tol(tol, c));
        energy += c * s.sum;
        skipped += s.skipped_classes as u64;
    }
    let mut penalized = energy;
    for &(weight, ref ops) in penalties {
        let mut v = 0.0;
        for &(px, pz, c) in ops {
            let s = state.pair_sum_screened(&frames, px, pz, 0..classes, term_tol(tol, weight * c));
            v += c * s.sum;
            skipped += s.skipped_classes as u64;
        }
        penalized += weight * v;
    }
    (ObjectiveValue { energy, penalized }, skipped)
}

/// Bound threshold of the coarse *ranking* evaluation: keep only classes
/// whose quadratic-Clifford bound exceeds 1/2 — for `±π/4` branch angles
/// that is the diagonal class and the single-branch-point classes
/// (overlap rank `ν ≤ 1`) — so scoring a move costs `O((1+t)·2^t)` per
/// term instead of the full `O(4^t)`.
const KT_RANK_BOUND: f64 = 0.5;

/// The coarse penalized score used to rank candidate moves before exact
/// evaluation: every term screened at the uniform [`KT_RANK_BOUND`].
/// Scores are compared against each other only — they never enter the
/// trace or the greedy acceptance chain.
fn rank_value_of(terms: &[MaskTerm], penalties: &[MaskPenalty], state: &BranchEnsemble) -> f64 {
    let frames = state.frames();
    let classes = frames.num_branches();
    let mut energy = 0.0;
    for &(px, pz, c) in terms {
        energy += c * state.pair_sum_screened(&frames, px, pz, 0..classes, KT_RANK_BOUND).sum;
    }
    let mut penalized = energy;
    for &(weight, ref ops) in penalties {
        let mut v = 0.0;
        for &(px, pz, c) in ops {
            v += c * state.pair_sum_screened(&frames, px, pz, 0..classes, KT_RANK_BOUND).sum;
        }
        penalized += weight * v;
    }
    penalized
}

/// The shared, engine-shippable core of a kT search: the Clifford+T
/// compiled template plus the Hamiltonian and penalty terms in mask
/// form. Mirrors the Clifford search's `EvalCore` — cheap to clone into
/// worker tasks behind an [`Arc`], with all per-candidate mutable state
/// in a scratch [`BranchEnsemble`].
pub(crate) struct KtCore {
    num_qubits: usize,
    template: CompiledAnsatz,
    terms: Vec<MaskTerm>,
    penalties: Vec<MaskPenalty>,
    /// [`CafqaOptions::screen_tolerance`]: 0.0 runs the frozen exact
    /// [`value_of`] path, anything larger the bound-screened one.
    screen_tolerance: f64,
}

/// An incremental evaluator for 8-ary configurations sharing a common
/// prefix — the kT counterpart of the Clifford search's `PolishSession`,
/// with the checkpoint state a [`BranchEnsemble`] so the prefix cache
/// works *across the T-gate frontier* (a checkpoint may hold open branch
/// frames; suffix replay conjugates them like any other state).
///
/// Variant batches shard over the session's engine; each variant's value
/// is a pure function of the variant alone, and shard results reassemble
/// in submission order, so traces are bit-identical at any worker count.
pub struct KtPolishSession {
    core: Arc<KtCore>,
    engine: ExecEngine,
    /// State after template ops `0..prefix_end` under `prefix_config`.
    prefix: Arc<BranchEnsemble>,
    prefix_config: Vec<usize>,
    prefix_end: usize,
    /// The template's layer boundaries (`CompiledAnsatz::layer_starts`).
    layers: Vec<usize>,
    /// Per-boundary snapshots, mirroring the Clifford
    /// `PolishSession` stack: `stack[i]` (when `Some`) holds the state
    /// after ops `0..layers[i]` under a configuration agreeing with
    /// `prefix_config` on every parameter read before `layers[i]` — so
    /// rewinds restore a snapshot instead of rebuilding from `|0…0⟩`.
    stack: Vec<Option<Arc<BranchEnsemble>>>,
    backward_seeks: u64,
    stack_restores: u64,
    skipped_classes: u64,
}

impl KtPolishSession {
    pub(crate) fn new(core: Arc<KtCore>, engine: ExecEngine) -> Self {
        let d = core.template.num_parameters();
        let prefix = Arc::new(BranchEnsemble::zero_state(core.num_qubits));
        let layers = core.template.layer_starts().to_vec();
        let stack = vec![None; layers.len()];
        KtPolishSession {
            core,
            engine,
            prefix,
            prefix_config: vec![0; d],
            prefix_end: 0,
            layers,
            stack,
            backward_seeks: 0,
            stack_restores: 0,
            skipped_classes: 0,
        }
    }

    /// `(backward_seeks, stack_restores)`: seeks that could not reuse the
    /// running checkpoint, and how many of those restored a layer
    /// snapshot instead of rebuilding the prefix from `|0…0⟩`.
    pub fn seek_stats(&self) -> (u64, u64) {
        (self.backward_seeks, self.stack_restores)
    }

    /// Total XOR classes the bound screen skipped across every evaluation
    /// this session ran. 0 while `screen_tolerance = 0`; deterministic at
    /// any worker count (integer accumulation is order-independent).
    pub fn skipped_classes(&self) -> u64 {
        self.skipped_classes
    }

    /// Evaluates arbitrary full configurations (no shared prefix): the
    /// engine-batched candidate path of the BO phase.
    pub fn evaluate_batch(&mut self, configs: &[Vec<usize>]) -> Vec<ObjectiveValue> {
        if self.prefix_end != 0 {
            let config = self.prefix_config.clone();
            Arc::make_mut(&mut self.prefix)
                .run_compiled_prefix(&self.core.template, &config, 0)
                .expect("an empty prefix opens no branches");
            self.prefix_end = 0;
        }
        self.evaluate_from_prefix(configs)
    }

    /// Evaluates variants of `base` that differ only at the parameters
    /// in `changed`: the prefix up to the first op reading a changed
    /// parameter is checkpointed once and only the suffix replays per
    /// variant.
    pub fn evaluate_variants(
        &mut self,
        base: &[usize],
        changed: &[usize],
        variants: &[Vec<usize>],
    ) -> Vec<ObjectiveValue> {
        let target_end =
            changed.iter().map(|&p| self.core.template.first_op_of(p)).min().unwrap_or(0);
        self.seek(base, target_end);
        self.evaluate_from_prefix(variants)
    }

    /// Coarse bound-screened scores for variants of `base` (same prefix
    /// contract as [`Self::evaluate_variants`]) — the move-*ranking*
    /// probe: every term's class loop truncated at [`KT_RANK_BOUND`], so
    /// a score costs `O((1+t)·2^t)` per term instead of `O(4^t)`. Scores
    /// shard over the engine exactly like exact values (pure per-variant
    /// functions reassembled in submission order) and never enter the
    /// trace.
    pub fn rank_variants(
        &mut self,
        base: &[usize],
        changed: &[usize],
        variants: &[Vec<usize>],
    ) -> Vec<f64> {
        let target_end =
            changed.iter().map(|&p| self.core.template.first_op_of(p)).min().unwrap_or(0);
        self.seek(base, target_end);
        self.shard_from_prefix(variants, |core, state| {
            rank_value_of(&core.terms, &core.penalties, state)
        })
    }

    /// Advances (or rewinds) the prefix checkpoint to cover template
    /// ops `0..target_end` under `base`. The running checkpoint is
    /// reused when every parameter it already consumed agrees with
    /// `base` — so ascending coordinate sweeps extend it incrementally;
    /// when it cannot be (a rewind, or a stale prefix), the deepest
    /// still-valid layer snapshot at or below the target is restored and
    /// only the ops past it replay, with a rebuild from `|0…0⟩` as the
    /// last resort. Forward advances snapshot every layer boundary they
    /// cross, so the stack refills as the sweep proceeds.
    fn seek(&mut self, base: &[usize], target_end: usize) {
        let template = &self.core.template;
        // Earliest op reading a parameter where `base` disagrees with
        // the configuration the checkpoint and snapshots were built
        // under; snapshots past it are not prefix states of `base`.
        let diff_first = base
            .iter()
            .zip(&self.prefix_config)
            .enumerate()
            .filter(|(_, (a, b))| a != b)
            .map(|(p, _)| template.first_op_of(p))
            .min()
            .unwrap_or(usize::MAX);
        for (i, slot) in self.stack.iter_mut().enumerate() {
            if self.layers[i] > diff_first {
                *slot = None;
            }
        }
        let reusable = target_end >= self.prefix_end && self.prefix_end <= diff_first;
        if !reusable {
            self.backward_seeks += 1;
            let restore = (0..self.layers.len())
                .rev()
                .find(|&i| self.layers[i] <= target_end && self.stack[i].is_some());
            match restore {
                Some(i) => {
                    let ckpt = Arc::clone(self.stack[i].as_ref().expect("found Some above"));
                    Arc::make_mut(&mut self.prefix).copy_from(&ckpt);
                    self.prefix_end = self.layers[i];
                    self.stack_restores += 1;
                }
                None => {
                    Arc::make_mut(&mut self.prefix)
                        .run_compiled_prefix(template, base, 0)
                        .expect("an empty prefix opens no branches");
                    self.prefix_end = 0;
                }
            }
        }
        while self.prefix_end < target_end {
            let next = self.layers.iter().position(|&b| b > self.prefix_end && b <= target_end);
            let prefix = Arc::make_mut(&mut self.prefix);
            let stop = match next {
                Some(i) => self.layers[i],
                None => target_end,
            };
            prefix
                .apply_range(template, base, self.prefix_end, stop)
                .expect("a prefix of a feasible configuration stays within the branch budget");
            self.prefix_end = stop;
            if let Some(i) = next {
                match &mut self.stack[i] {
                    Some(ckpt) => Arc::make_mut(ckpt).copy_from(prefix),
                    slot => *slot = Some(Arc::new(prefix.clone())),
                }
            }
        }
        self.prefix_config.clear();
        self.prefix_config.extend_from_slice(base);
    }

    /// Checkpoint + suffix replay for every variant through the
    /// (possibly screened) objective, with the skipped-class counts
    /// folded into the session counter. The fold is a plain integer sum,
    /// so the counter — like the values — does not depend on chunking or
    /// worker count.
    fn evaluate_from_prefix(&mut self, variants: &[Vec<usize>]) -> Vec<ObjectiveValue> {
        let results = self.shard_from_prefix(variants, |core, state| {
            value_of_screened(&core.terms, &core.penalties, state, core.screen_tolerance)
        });
        results
            .into_iter()
            .map(|(value, skipped)| {
                self.skipped_classes += skipped;
                value
            })
            .collect()
    }

    /// The sharding skeleton shared by exact evaluation and move
    /// ranking: checkpoint + suffix replay per variant, in candidate
    /// chunks over the engine (chunking cannot change any result: each
    /// variant is processed wholly by one task, and results reassemble
    /// in submission order).
    fn shard_from_prefix<T, F>(&self, variants: &[Vec<usize>], kernel: F) -> Vec<T>
    where
        T: Send + 'static,
        F: Fn(&KtCore, &BranchEnsemble) -> T + Send + Sync + Clone + 'static,
    {
        let end = self.prefix_end;
        let ops_len = self.core.template.ops().len();
        if variants.len() > 1 && self.engine.is_pooled() {
            let chunk = variants.len().div_ceil(self.engine.workers() * 2).max(1);
            let tasks: Vec<_> = variants
                .chunks(chunk)
                .map(|chunk| {
                    let core = Arc::clone(&self.core);
                    let prefix = Arc::clone(&self.prefix);
                    let chunk = chunk.to_vec();
                    let kernel = kernel.clone();
                    move || {
                        let mut scratch = (*prefix).clone();
                        chunk
                            .iter()
                            .map(|config| {
                                scratch.copy_from(&prefix);
                                scratch
                                    .apply_range(&core.template, config, end, ops_len)
                                    .expect("feasible suffix stays within the branch budget");
                                kernel(&core, &scratch)
                            })
                            .collect::<Vec<_>>()
                    }
                })
                .collect();
            self.engine.map(tasks).into_iter().flatten().collect()
        } else {
            let mut scratch = (*self.prefix).clone();
            variants
                .iter()
                .map(|config| {
                    scratch.copy_from(&self.prefix);
                    scratch
                        .apply_range(&self.core.template, config, end, ops_len)
                        .expect("feasible suffix stays within the branch budget");
                    kernel(&self.core, &scratch)
                })
                .collect()
        }
    }
}

/// Builds a standalone [`KtPolishSession`] for a template-expressible
/// ansatz — the screened-vs-exact A/B hook the benches and equivalence
/// tests drive directly (the search itself builds its session
/// internally). Returns `None` when the ansatz cannot compile to a
/// Clifford+T template.
pub fn kt_session(
    engine: &ExecEngine,
    ansatz: &dyn Ansatz,
    hamiltonian: &PauliOp,
    penalties: &[Penalty],
    screen_tolerance: f64,
) -> Option<KtPolishSession> {
    let template = CompiledAnsatz::compile_clifford_t(ansatz)?;
    let core = KtCore {
        num_qubits: ansatz.num_qubits(),
        template,
        terms: masks_of(hamiltonian),
        penalties: penalties.iter().map(|p| (p.weight, masks_of(p.squared_op()))).collect(),
        screen_tolerance,
    };
    Some(KtPolishSession::new(Arc::new(core), engine.clone()))
}

/// The polish endgame's accumulated outcome.
struct KtPolish {
    best_config: Vec<usize>,
    best_value: ObjectiveValue,
    trace: Vec<(f64, f64)>,
    last_accept: Option<usize>,
    screened_moves: u64,
}

/// The evaluator the polish driver calls, always with
/// `(base config, changed params, variants)`: `exact` values enter the
/// trace and the greedy chain; `rank` scores only order a batch before
/// the survivors are evaluated exactly.
trait KtPolishEval {
    fn exact(
        &mut self,
        base: &[usize],
        changed: &[usize],
        variants: &[Vec<usize>],
    ) -> Vec<ObjectiveValue>;
    fn rank(&mut self, base: &[usize], changed: &[usize], variants: &[Vec<usize>]) -> Vec<f64>;
}

/// Ranks a variant batch with the coarse bound-screened scores and keeps
/// the `rank_top` best-looking moves, restored to sweep order — the kT
/// counterpart of the Clifford polish's `polish_screen_top` surrogate
/// screen. The stable sort breaks score ties on batch index, so the
/// pruned set (and hence the trace over the survivors) is deterministic.
fn screen_moves(
    eval: &mut dyn KtPolishEval,
    base: &[usize],
    changed: &[usize],
    variants: Vec<Vec<usize>>,
    rank_top: usize,
) -> (Vec<Vec<usize>>, u64) {
    if rank_top == 0 || variants.len() <= rank_top {
        return (variants, 0);
    }
    let scores = eval.rank(base, changed, &variants);
    let mut order: Vec<usize> = (0..variants.len()).collect();
    order.sort_by(|&a, &b| scores[a].total_cmp(&scores[b]));
    let mut keep = order[..rank_top].to_vec();
    keep.sort_unstable();
    let pruned = (variants.len() - rank_top) as u64;
    (keep.into_iter().map(|k| variants[k].clone()).collect(), pruned)
}

/// 8-ary greedy polish: coordinate sweeps over the eighth-turn grid
/// (budget-filtered: a move may open a branch only while `t < k_max`)
/// followed by T-*migration* pair moves that relocate one non-Clifford
/// rotation to a different parameter at constant T count — the joint
/// move a single-coordinate sweep cannot make without first leaving the
/// budget or crossing an energy barrier. Acceptance replays the serial
/// greedy chain via [`chain_accept`], so the trace is independent of how
/// the variant batches were computed.
///
/// With `rank_top > 0` every batch larger than `rank_top` is first
/// ordered by the coarse bound-screened score ([`screen_moves`]) and
/// only the top `rank_top` moves are evaluated exactly; pruned moves
/// never enter the trace.
fn polish_kt(
    eval: &mut dyn KtPolishEval,
    start: Vec<usize>,
    start_value: ObjectiveValue,
    k_max: usize,
    sweeps: usize,
    rank_top: usize,
) -> KtPolish {
    let d = start.len();
    let mut best_config = start;
    let mut best_value = start_value;
    let mut trace: Vec<(f64, f64)> = Vec::new();
    let mut last_accept: Option<usize> = None;
    let mut screened_moves = 0u64;
    for _sweep in 0..sweeps {
        let mut improved = false;
        // Coordinate phase: every alternative eighth-turn per parameter
        // that keeps the configuration under budget, one batch per
        // coordinate.
        for i in 0..d {
            let current = best_config[i];
            let t = t_count_of(&best_config);
            let variants: Vec<Vec<usize>> = (0..8)
                .filter(|&v| v != current && t - current % 2 + v % 2 <= k_max)
                .map(|v| {
                    let mut config = best_config.clone();
                    config[i] = v;
                    config
                })
                .collect();
            if variants.is_empty() {
                continue;
            }
            let (variants, pruned) = screen_moves(eval, &best_config, &[i], variants, rank_top);
            screened_moves += pruned;
            let values = eval.exact(&best_config, &[i], &variants);
            let base_len = trace.len();
            trace.extend(values.iter().map(|v| (v.energy, v.penalized)));
            if let Some(idx) = chain_accept(&values, best_value.penalized, 1e-12) {
                best_config.clone_from(&variants[idx]);
                best_value = values[idx];
                last_accept = Some(base_len + idx + 1);
                improved = true;
            }
        }
        // Migration phase: move each T to every Clifford parameter, both
        // removal directions × both insertion directions per target.
        if k_max > 0 {
            let odd_params: Vec<usize> = (0..d).filter(|&i| best_config[i] % 2 == 1).collect();
            for i in odd_params {
                for j in 0..d {
                    if best_config[i] % 2 == 0 {
                        break; // this T already migrated away
                    }
                    if j == i || best_config[j] % 2 == 1 {
                        continue;
                    }
                    let mut variants = Vec::with_capacity(4);
                    for di in [1usize, 7] {
                        for dj in [1usize, 7] {
                            let mut config = best_config.clone();
                            config[i] = (config[i] + di) % 8;
                            config[j] = (config[j] + dj) % 8;
                            variants.push(config);
                        }
                    }
                    let (variants, pruned) =
                        screen_moves(eval, &best_config, &[i, j], variants, rank_top);
                    screened_moves += pruned;
                    let values = eval.exact(&best_config, &[i, j], &variants);
                    let base_len = trace.len();
                    trace.extend(values.iter().map(|v| (v.energy, v.penalized)));
                    if let Some(idx) = chain_accept(&values, best_value.penalized, 1e-12) {
                        best_config.clone_from(&variants[idx]);
                        best_value = values[idx];
                        last_accept = Some(base_len + idx + 1);
                        improved = true;
                    }
                }
            }
        }
        if !improved {
            break;
        }
    }
    KtPolish { best_config, best_value, trace, last_accept, screened_moves }
}

/// The search's evaluator: the compiled incremental session when the
/// ansatz is template-expressible, per-candidate circuit lowering
/// otherwise (serial: the borrowed ansatz cannot ship to pool workers).
/// Both paths run the same (possibly screened) objective and accumulate
/// the same counters.
struct KtEvaluator<'a> {
    session: Option<KtPolishSession>,
    ansatz: &'a dyn Ansatz,
    terms: &'a [MaskTerm],
    penalties: &'a [MaskPenalty],
    screen_tolerance: f64,
    fallback_skipped: u64,
}

impl KtEvaluator<'_> {
    fn fallback_state(&self, config: &[usize]) -> BranchEnsemble {
        BranchEnsemble::from_circuit(&self.ansatz.bind_eighth(config))
            .expect("t budget keeps the branch count in range")
    }

    fn fallback_value(&mut self, config: &[usize]) -> ObjectiveValue {
        let state = self.fallback_state(config);
        let (value, skipped) =
            value_of_screened(self.terms, self.penalties, &state, self.screen_tolerance);
        self.fallback_skipped += skipped;
        value
    }

    /// Arbitrary full configurations — the BO phase's candidate path.
    fn eval_batch(&mut self, configs: &[Vec<usize>]) -> Vec<ObjectiveValue> {
        match &mut self.session {
            Some(session) => session.evaluate_batch(configs),
            None => configs.iter().map(|config| self.fallback_value(config)).collect(),
        }
    }

    fn skipped_classes(&self) -> u64 {
        self.fallback_skipped + self.session.as_ref().map_or(0, |s| s.skipped_classes())
    }
}

impl KtPolishEval for KtEvaluator<'_> {
    fn exact(
        &mut self,
        base: &[usize],
        changed: &[usize],
        variants: &[Vec<usize>],
    ) -> Vec<ObjectiveValue> {
        match &mut self.session {
            Some(session) => session.evaluate_variants(base, changed, variants),
            None => variants.iter().map(|config| self.fallback_value(config)).collect(),
        }
    }

    fn rank(&mut self, base: &[usize], changed: &[usize], variants: &[Vec<usize>]) -> Vec<f64> {
        match &mut self.session {
            Some(session) => session.rank_variants(base, changed, variants),
            None => variants
                .iter()
                .map(|config| {
                    rank_value_of(self.terms, self.penalties, &self.fallback_state(config))
                })
                .collect(),
        }
    }
}

/// Runs the CAFQA+kT search with at most `k_max` T-like rotations, on
/// the process-global execution engine.
///
/// Seeds are 8-ary (use [`widen_clifford_config`] on a Clifford-only
/// CAFQA result — the paper inserts T gates "at prior Clifford gate
/// positions"). See [`run_cafqa_kt_on`] for the feasibility and
/// determinism contract.
///
/// # Errors
///
/// [`KtError::BudgetTooLarge`] when `k_max` exceeds
/// [`MAX_BRANCH_GATES`]; [`KtError::SeedInfeasible`] when a seed uses
/// more than `k_max` non-Clifford rotations.
pub fn run_cafqa_kt(
    ansatz: &dyn Ansatz,
    hamiltonian: &PauliOp,
    penalties: Vec<Penalty>,
    k_max: usize,
    seeds: &[Vec<usize>],
    opts: &CafqaOptions,
) -> Result<CafqaKtResult, KtError> {
    run_cafqa_kt_on(ExecEngine::global(), ansatz, hamiltonian, penalties, k_max, seeds, opts)
}

/// [`run_cafqa_kt`] on an explicit [`ExecEngine`].
///
/// # Feasibility and determinism
///
/// Three properties compose, and this section is the single source of
/// truth for them:
///
/// - **Feasible by construction.** The Bayesian layer does not sample
///   the raw 8-ary grid (where most of the space is over budget and a
///   rejection constant poisons the surrogate). It samples a genome of
///   `d` Clifford dimensions plus `k_max` *insertion* dimensions, each
///   either inert or turning one parameter by `±π/4`; decoded
///   configurations therefore carry at most `k_max` odd indices, every
///   evaluation runs a real branch simulation, and
///   [`CafqaKtResult::rejected_evaluations`] is always 0. The incumbent
///   is always simulable, so the search returns a structured
///   [`KtError`] on bad *inputs* instead of panicking on its own
///   output.
/// - **`k_max = 0` reproduces the Clifford search.** A zero budget
///   delegates wholesale to [`run_cafqa_on`] (same engine, options and
///   seeds, with seeds narrowed to the 4-ary grid) and widens the
///   result; the trace is bit-identical to the classic run's.
/// - **Worker-count bit-identity.** Candidate values are pure functions
///   of the candidate: terms sum in storage order, branch-pair classes
///   in one fixed full-range fold ([`value_of`]'s contract), and the
///   engine reassembles shard results in submission order. Changing the
///   worker count — including to 1 — changes no bit of the trace,
///   matching the Clifford search's contract.
///
/// The polish endgame ([`KtPolishSession`]) extends the incremental
/// prefix-checkpoint kernel across the T-gate frontier and adds
/// T-migration pair moves at constant T count; its greedy acceptance
/// fold only ever improves on the BO incumbent.
///
/// With [`CafqaOptions::screen_tolerance`] or
/// [`CafqaOptions::kt_rank_top`] nonzero, evaluations run behind the
/// quadratic-Clifford bound screen and polish batches are bound-ranked —
/// see the [screening and
/// tolerance](CafqaOptions#screening-and-tolerance) notes for the
/// tolerance semantics and what stays deterministic. At the defaults
/// (`0.0` / `0`) every path above is the frozen exact one, bit for bit.
///
/// # Errors
///
/// As for [`run_cafqa_kt`].
pub fn run_cafqa_kt_on(
    engine: &ExecEngine,
    ansatz: &dyn Ansatz,
    hamiltonian: &PauliOp,
    penalties: Vec<Penalty>,
    k_max: usize,
    seeds: &[Vec<usize>],
    opts: &CafqaOptions,
) -> Result<CafqaKtResult, KtError> {
    let d = ansatz.num_parameters();
    if k_max > MAX_BRANCH_GATES {
        return Err(KtError::BudgetTooLarge { k_max, max: MAX_BRANCH_GATES });
    }
    let mut genome_seeds = Vec::with_capacity(seeds.len());
    for (index, seed) in seeds.iter().enumerate() {
        genome_seeds.push(
            encode_seed(seed, d, k_max).map_err(|t_count| KtError::SeedInfeasible {
                seed: index,
                t_count,
                k_max,
            })?,
        );
    }
    if k_max == 0 {
        // Zero budget: the space *is* the Clifford space. Delegate to the
        // classic search (bit-identical trace) and widen the result.
        let clifford_seeds: Vec<Vec<usize>> =
            genome_seeds.iter().map(|g| g[..d].to_vec()).collect();
        let r = run_cafqa_on(engine, ansatz, hamiltonian, penalties, &clifford_seeds, opts);
        return Ok(CafqaKtResult {
            best_config: widen_clifford_config(&r.best_config),
            energy: r.energy,
            penalized: r.penalized,
            t_count: 0,
            feasible_evaluations: r.evaluations,
            rejected_evaluations: 0,
            iterations_to_best: r.iterations_to_best,
            polish_evaluations: r.polish_evaluations,
            trace: r.trace,
            screened_classes: 0,
            screened_moves: 0,
        });
    }

    let terms = masks_of(hamiltonian);
    let penalty_masks: Vec<MaskPenalty> =
        penalties.iter().map(|p| (p.weight, masks_of(p.squared_op()))).collect();
    // Template-expressible ansätze get the compiled incremental path;
    // anything else falls back to per-candidate circuit lowering (serial:
    // the borrowed ansatz cannot ship to pool workers).
    let session = CompiledAnsatz::compile_clifford_t(ansatz).map(|template| {
        let core = KtCore {
            num_qubits: ansatz.num_qubits(),
            template,
            terms: terms.clone(),
            penalties: penalty_masks.clone(),
            screen_tolerance: opts.screen_tolerance,
        };
        KtPolishSession::new(Arc::new(core), engine.clone())
    });
    let mut evaluator = KtEvaluator {
        session,
        ansatz,
        terms: &terms,
        penalties: &penalty_masks,
        screen_tolerance: opts.screen_tolerance,
        fallback_skipped: 0,
    };

    let space = kt_search_space(d, k_max);
    let mut raw_trace: Vec<(f64, f64)> = Vec::new();
    let bo_opts = BoOptions {
        warmup: opts.warmup,
        iterations: opts.iterations,
        seed: opts.seed,
        patience: opts.patience,
        proposals_per_refit: opts.proposals_per_refit,
        forest: ForestOptions { window: opts.forest_window, ..Default::default() },
        ..Default::default()
    };
    let result = minimize_with(
        &space,
        |batch: &[Vec<usize>]| {
            let decoded: Vec<Vec<usize>> =
                batch.iter().map(|genome| decode_genome(genome, d)).collect();
            let values = evaluator.eval_batch(&decoded);
            values
                .iter()
                .map(|v| {
                    raw_trace.push((v.energy, v.penalized));
                    v.penalized
                })
                .collect()
        },
        &genome_seeds,
        &bo_opts,
        engine,
    );
    let bo_evaluations = raw_trace.len();
    let best_genome = if result.best_config.is_empty() {
        vec![0; d + k_max] // zero-budget search phases: polish from the origin
    } else {
        result.best_config
    };
    let best8 = decode_genome(&best_genome, d);
    let start_value = match raw_trace.get(result.iterations_to_best.wrapping_sub(1)) {
        Some(&(energy, penalized)) => ObjectiveValue { energy, penalized },
        None => evaluator.eval_batch(std::slice::from_ref(&best8))[0],
    };

    let polish =
        polish_kt(&mut evaluator, best8, start_value, k_max, opts.polish_sweeps, opts.kt_rank_top);

    let mut iterations_to_best = result.iterations_to_best;
    if let Some(accept) = polish.last_accept {
        iterations_to_best = bo_evaluations + accept;
    }
    raw_trace.extend(polish.trace.iter().copied());
    let mut best = f64::INFINITY;
    let trace: Vec<SearchPoint> = raw_trace
        .iter()
        .map(|&(energy, penalized)| {
            best = best.min(penalized);
            SearchPoint { energy, penalized, best_so_far: best }
        })
        .collect();
    Ok(CafqaKtResult {
        t_count: t_count_of(&polish.best_config),
        best_config: polish.best_config,
        energy: polish.best_value.energy,
        penalized: polish.best_value.penalized,
        feasible_evaluations: trace.len(),
        rejected_evaluations: 0,
        iterations_to_best,
        polish_evaluations: polish.trace.len(),
        trace,
        screened_classes: evaluator.skipped_classes(),
        screened_moves: polish.screened_moves,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cafqa_circuit::EfficientSu2;
    use cafqa_clifford::CliffordTState;

    #[test]
    fn t_counting() {
        assert_eq!(t_count_of(&[0, 2, 4, 6]), 0);
        assert_eq!(t_count_of(&[1, 2, 3, 0]), 2);
        assert_eq!(widen_clifford_config(&[0, 1, 2, 3]), vec![0, 2, 4, 6]);
    }

    #[test]
    fn genome_space_is_feasible_by_construction() {
        let (d, k_max) = (5, 2);
        let space = kt_search_space(d, k_max);
        assert_eq!(space.cardinalities, vec![4, 4, 4, 4, 4, 11, 11]);
        // A deterministic sweep over genomes: decode never exceeds the
        // budget, whatever the insertion dimensions say.
        for s in 0..300usize {
            let genome: Vec<usize> = space
                .cardinalities
                .iter()
                .enumerate()
                .map(|(i, &card)| (s.wrapping_mul(2654435761).wrapping_add(i * 40503)) % card)
                .collect();
            let config = decode_genome(&genome, d);
            assert!(t_count_of(&config) <= k_max, "{genome:?} -> {config:?}");
            assert!(config.iter().all(|&k| k < 8));
        }
        // Encode ∘ decode is the identity on feasible configurations.
        for config in [vec![0, 2, 4, 6, 0], vec![1, 0, 0, 0, 7], vec![3, 6, 1, 0, 2]] {
            let genome = encode_seed(&config, d, k_max).unwrap();
            assert_eq!(decode_genome(&genome, d), config);
        }
        // Over-budget seeds report their T count.
        assert_eq!(encode_seed(&[1, 1, 1, 0, 0], d, k_max), Err(3));
    }

    #[test]
    fn infeasible_inputs_are_structured_errors() {
        let h: PauliOp = "Z".parse().unwrap();
        let ansatz = EfficientSu2::new(1, 0);
        let opts = CafqaOptions::quick();
        // The old implementation panicked post-search on infeasible
        // incumbents; now over-budget seeds fail up front, structured.
        let err = run_cafqa_kt(&ansatz, &h, Vec::new(), 1, &[vec![1, 1]], &opts).unwrap_err();
        assert_eq!(err, KtError::SeedInfeasible { seed: 0, t_count: 2, k_max: 1 });
        let err =
            run_cafqa_kt(&ansatz, &h, Vec::new(), MAX_BRANCH_GATES + 1, &[], &opts).unwrap_err();
        assert_eq!(
            err,
            KtError::BudgetTooLarge { k_max: MAX_BRANCH_GATES + 1, max: MAX_BRANCH_GATES }
        );
        assert!(err.to_string().contains("branch-engine limit"));
    }

    #[test]
    fn kt_beats_clifford_on_non_clifford_ground_state() {
        // H = cos(π/4) Z + sin(π/4) X has ground state requiring a π/4
        // rotation; Clifford-only caps out at −cos(π/4) ≈ −0.707 while one
        // T-like rotation reaches −1.
        let h: PauliOp = "-0.70710678*Z - 0.70710678*X".parse().unwrap();
        let ansatz = EfficientSu2::new(1, 0);
        let opts = CafqaOptions { warmup: 20, iterations: 60, ..Default::default() };
        let clifford_best = {
            // Exhaust the 16 Clifford configs on the dense oracle.
            let mut best = f64::INFINITY;
            for a in 0..4 {
                for b in 0..4 {
                    let circuit = ansatz.bind_eighth(&[2 * a, 2 * b]);
                    let state = CliffordTState::from_circuit(&circuit).unwrap();
                    best = best.min(state.expectation(&h));
                }
            }
            best
        };
        let kt = run_cafqa_kt(&ansatz, &h, Vec::new(), 1, &[], &opts).unwrap();
        assert!(kt.t_count <= 1);
        assert!(kt.energy < clifford_best - 0.1, "kT {} vs Clifford {clifford_best}", kt.energy);
        assert!((kt.energy + 1.0).abs() < 0.05, "kT energy {}", kt.energy);
        assert_eq!(kt.rejected_evaluations, 0, "the feasible genome never rejects");
        assert_eq!(kt.feasible_evaluations, kt.trace.len());
        assert!(kt.polish_evaluations < kt.trace.len());
    }

    #[test]
    fn budget_zero_reduces_to_clifford() {
        let h: PauliOp = "Z".parse().unwrap();
        let ansatz = EfficientSu2::new(1, 0);
        let opts = CafqaOptions { warmup: 30, iterations: 40, ..Default::default() };
        let kt = run_cafqa_kt(&ansatz, &h, Vec::new(), 0, &[vec![0, 0]], &opts).unwrap();
        assert_eq!(kt.t_count, 0);
        assert!((kt.energy + 1.0).abs() < 1e-9); // Ry(π) flips to |1⟩, ⟨Z⟩ = −1.
    }

    #[test]
    fn budget_zero_is_bit_identical_to_the_clifford_search() {
        let h: PauliOp = "0.5*ZZ + 0.25*XI - 0.3*IZ".parse().unwrap();
        let ansatz = EfficientSu2::new(2, 0);
        let opts =
            CafqaOptions { warmup: 20, iterations: 30, polish_sweeps: 2, ..Default::default() };
        let clifford = crate::runner::run_cafqa(&ansatz, &h, Vec::new(), &[], &opts);
        let kt = run_cafqa_kt(&ansatz, &h, Vec::new(), 0, &[], &opts).unwrap();
        assert_eq!(kt.best_config, widen_clifford_config(&clifford.best_config));
        assert_eq!(kt.energy.to_bits(), clifford.energy.to_bits());
        assert_eq!(kt.trace.len(), clifford.trace.len());
        for (a, b) in kt.trace.iter().zip(&clifford.trace) {
            assert_eq!(a.penalized.to_bits(), b.penalized.to_bits());
            assert_eq!(a.energy.to_bits(), b.energy.to_bits());
        }
        assert_eq!(kt.feasible_evaluations, clifford.evaluations);
        assert_eq!(kt.iterations_to_best, clifford.iterations_to_best);
    }

    #[test]
    fn trace_is_bit_identical_at_any_worker_count() {
        let h: PauliOp = "-0.70710678*Z - 0.70710678*X".parse().unwrap();
        let ansatz = EfficientSu2::new(1, 0);
        let opts =
            CafqaOptions { warmup: 15, iterations: 25, polish_sweeps: 2, ..Default::default() };
        let runs: Vec<CafqaKtResult> = [1usize, 2, 8]
            .iter()
            .map(|&workers| {
                let engine = ExecEngine::new(workers);
                run_cafqa_kt_on(&engine, &ansatz, &h, Vec::new(), 1, &[], &opts).unwrap()
            })
            .collect();
        let reference = &runs[0];
        for run in &runs[1..] {
            assert_eq!(run.best_config, reference.best_config);
            assert_eq!(run.energy.to_bits(), reference.energy.to_bits());
            assert_eq!(run.iterations_to_best, reference.iterations_to_best);
            assert_eq!(run.trace.len(), reference.trace.len());
            for (a, b) in run.trace.iter().zip(&reference.trace) {
                assert_eq!(a.energy.to_bits(), b.energy.to_bits());
                assert_eq!(a.penalized.to_bits(), b.penalized.to_bits());
            }
        }
    }

    #[test]
    fn screening_counters_are_zero_at_the_defaults() {
        let h: PauliOp = "-0.70710678*Z - 0.70710678*X".parse().unwrap();
        let ansatz = EfficientSu2::new(1, 0);
        let opts = CafqaOptions { warmup: 10, iterations: 15, ..Default::default() };
        let kt = run_cafqa_kt(&ansatz, &h, Vec::new(), 1, &[], &opts).unwrap();
        assert_eq!(kt.screened_classes, 0);
        assert_eq!(kt.screened_moves, 0);
    }

    #[test]
    fn rank_top_prunes_polish_moves_and_counts_them() {
        let h: PauliOp = "0.5*ZZ + 0.25*XI - 0.3*IZ + 0.1*YY".parse().unwrap();
        let ansatz = EfficientSu2::new(2, 0);
        let base =
            CafqaOptions { warmup: 15, iterations: 20, polish_sweeps: 2, ..Default::default() };
        let full = run_cafqa_kt(&ansatz, &h, Vec::new(), 2, &[], &base).unwrap();
        let ranked_opts = CafqaOptions { kt_rank_top: 2, ..base };
        let ranked = run_cafqa_kt(&ansatz, &h, Vec::new(), 2, &[], &ranked_opts).unwrap();
        // Coordinate batches have up to 7 variants; rank_top = 2 must
        // have pruned some, and every pruned move is one the trace never
        // paid for.
        assert!(ranked.screened_moves > 0, "no moves pruned");
        assert!(
            ranked.polish_evaluations < full.polish_evaluations,
            "ranked polish {} vs full {}",
            ranked.polish_evaluations,
            full.polish_evaluations
        );
        // The greedy fold still only ever improves on its BO incumbent,
        // and the BO phase itself (rank-agnostic) is unchanged.
        assert!(ranked.penalized <= full.trace[full.iterations_to_best - 1].penalized + 1e-9);
        assert_eq!(ranked.rejected_evaluations, 0);
        assert_eq!(ranked.screened_classes, 0, "ranking alone skips no classes");
    }

    #[test]
    fn screened_search_reports_skips_and_stays_deterministic() {
        // Mixed coefficient weights so a mid-sized tolerance screens the
        // light term's classes but not the heavy ones'.
        let h: PauliOp = "0.6*ZZ + 0.4*XX + 0.001*YY + 0.0005*XY".parse().unwrap();
        let ansatz = EfficientSu2::new(2, 0);
        let opts = CafqaOptions {
            warmup: 15,
            iterations: 20,
            polish_sweeps: 1,
            screen_tolerance: 1e-3,
            ..Default::default()
        };
        let runs: Vec<CafqaKtResult> = [1usize, 2, 8]
            .iter()
            .map(|&workers| {
                let engine = ExecEngine::new(workers);
                run_cafqa_kt_on(&engine, &ansatz, &h, Vec::new(), 2, &[], &opts).unwrap()
            })
            .collect();
        assert!(runs[0].screened_classes > 0, "tolerance 1e-3 never fired");
        for run in &runs[1..] {
            assert_eq!(run.screened_classes, runs[0].screened_classes);
            assert_eq!(run.best_config, runs[0].best_config);
            assert_eq!(run.energy.to_bits(), runs[0].energy.to_bits());
            assert_eq!(run.trace.len(), runs[0].trace.len());
            for (a, b) in run.trace.iter().zip(&runs[0].trace) {
                assert_eq!(a.penalized.to_bits(), b.penalized.to_bits());
            }
        }
    }

    #[test]
    fn search_runs_beyond_the_dense_qubit_cap() {
        // 26 qubits: the dense branch backend cannot even represent a
        // candidate, but the tableau ensemble searches and polishes to
        // the exact single-qubit optimum.
        let n = 26;
        let ansatz = EfficientSu2::new(n, 0);
        let h = PauliOp::from_terms(
            n,
            [(
                cafqa_linalg::Complex64::ONE,
                cafqa_pauli::PauliString::single(n, 0, cafqa_pauli::Pauli::Z),
            )],
        );
        let opts =
            CafqaOptions { warmup: 8, iterations: 8, polish_sweeps: 1, ..Default::default() };
        let kt = run_cafqa_kt(&ansatz, &h, Vec::new(), 1, &[], &opts).unwrap();
        assert_eq!(kt.best_config.len(), ansatz.num_parameters());
        assert!(kt.t_count <= 1);
        // ⟨Z₀⟩ = cos(θ_ry) on the no-entangler ansatz: the coordinate
        // polish reaches the exact minimum.
        assert!((kt.energy + 1.0).abs() < 1e-9, "energy {}", kt.energy);
    }
}
