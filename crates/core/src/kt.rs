//! CAFQA+kT: the beyond-Clifford search (paper §8, Fig. 16).
//!
//! The angle grid per parameter widens from 4 Clifford angles to 8
//! eighth-turns (`k·π/4`); every odd index is a non-Clifford rotation and
//! costs one branch doubling in the stabilizer-rank engine. A budget of
//! at most `k_max` odd indices keeps the configuration classically
//! simulable (`2^k` Clifford branches).

use cafqa_bayesopt::{minimize, BoOptions, SearchSpace};
use cafqa_circuit::Ansatz;
use cafqa_clifford::CliffordTState;
use cafqa_pauli::PauliOp;

use crate::objective::Penalty;
use crate::runner::CafqaOptions;

/// The outcome of a CAFQA+kT search.
#[derive(Debug, Clone)]
pub struct CafqaKtResult {
    /// Best configuration over the 8-ary grid.
    pub best_config: Vec<usize>,
    /// Raw `⟨H⟩` of the best configuration.
    pub energy: f64,
    /// Number of non-Clifford rotations in the best configuration
    /// (`≤ k_max`).
    pub t_count: usize,
    /// Evaluations performed (infeasible configurations included).
    pub evaluations: usize,
}

/// Number of odd (non-Clifford) indices in an 8-ary configuration.
pub fn t_count_of(config: &[usize]) -> usize {
    config.iter().filter(|&&k| k % 2 == 1).count()
}

/// Converts a Clifford (4-ary) configuration to the 8-ary grid.
pub fn widen_clifford_config(config: &[usize]) -> Vec<usize> {
    config.iter().map(|&k| 2 * k).collect()
}

/// Runs the CAFQA+kT search with at most `k_max` T-like rotations.
///
/// Seeds should be 8-ary (use [`widen_clifford_config`] on a Clifford-only
/// CAFQA result — the paper inserts T gates "at prior Clifford gate
/// positions").
pub fn run_cafqa_kt(
    ansatz: &dyn Ansatz,
    hamiltonian: &PauliOp,
    penalties: &[Penalty],
    k_max: usize,
    seeds: &[Vec<usize>],
    opts: &CafqaOptions,
) -> CafqaKtResult {
    let space = SearchSpace::uniform(ansatz.num_parameters(), 8);
    // Infeasible (over-budget) configurations are rejected with a large
    // constant before any simulation runs.
    const INFEASIBLE: f64 = 1e6;
    let evaluate = |config: &[usize]| -> f64 {
        let t = t_count_of(config);
        if t > k_max {
            return INFEASIBLE + t as f64;
        }
        let circuit = ansatz.bind_eighth(config);
        let state = CliffordTState::from_circuit(&circuit)
            .expect("t budget keeps the branch count in range");
        let mut value = state.expectation(hamiltonian);
        for p in penalties {
            value += p.weight * state.expectation(p.squared_op());
        }
        value
    };
    let bo_opts = BoOptions {
        warmup: opts.warmup,
        iterations: opts.iterations,
        seed: opts.seed,
        patience: opts.patience,
        proposals_per_refit: opts.proposals_per_refit,
        ..Default::default()
    };
    // Stabilizer-rank branch simulation borrows the ansatz per candidate,
    // so the batch objective maps serially; batched acquisition still
    // amortizes the surrogate refits.
    let result = minimize(
        &space,
        |batch: &[Vec<usize>]| batch.iter().map(|config| evaluate(config)).collect(),
        seeds,
        &bo_opts,
    );
    let best_config = result.best_config;
    let circuit = ansatz.bind_eighth(&best_config);
    let state = CliffordTState::from_circuit(&circuit).expect("feasible best configuration");
    CafqaKtResult {
        energy: state.expectation(hamiltonian),
        t_count: t_count_of(&best_config),
        evaluations: result.history.len(),
        best_config,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cafqa_circuit::EfficientSu2;

    #[test]
    fn t_counting() {
        assert_eq!(t_count_of(&[0, 2, 4, 6]), 0);
        assert_eq!(t_count_of(&[1, 2, 3, 0]), 2);
        assert_eq!(widen_clifford_config(&[0, 1, 2, 3]), vec![0, 2, 4, 6]);
    }

    #[test]
    fn kt_beats_clifford_on_non_clifford_ground_state() {
        // H = cos(π/4) Z + sin(π/4) X has ground state requiring a π/4
        // rotation; Clifford-only caps out at −cos(π/4) ≈ −0.707 while one
        // T-like rotation reaches −1.
        let h: PauliOp = "-0.70710678*Z - 0.70710678*X".parse().unwrap();
        let ansatz = EfficientSu2::new(1, 0);
        let opts = CafqaOptions { warmup: 20, iterations: 60, ..Default::default() };
        let clifford_best = {
            // Exhaust the 16 Clifford configs.
            let mut best = f64::INFINITY;
            for a in 0..4 {
                for b in 0..4 {
                    let circuit = ansatz.bind_eighth(&[2 * a, 2 * b]);
                    let state = CliffordTState::from_circuit(&circuit).unwrap();
                    best = best.min(state.expectation(&h));
                }
            }
            best
        };
        let kt = run_cafqa_kt(&ansatz, &h, &[], 1, &[], &opts);
        assert!(kt.t_count <= 1);
        assert!(kt.energy < clifford_best - 0.1, "kT {} vs Clifford {clifford_best}", kt.energy);
        assert!((kt.energy + 1.0).abs() < 0.05, "kT energy {}", kt.energy);
    }

    #[test]
    fn budget_zero_reduces_to_clifford() {
        let h: PauliOp = "Z".parse().unwrap();
        let ansatz = EfficientSu2::new(1, 0);
        let opts = CafqaOptions { warmup: 30, iterations: 40, ..Default::default() };
        let kt = run_cafqa_kt(&ansatz, &h, &[], 0, &[vec![0, 0]], &opts);
        assert_eq!(kt.t_count, 0);
        assert!((kt.energy + 1.0).abs() < 1e-9); // Ry(π) flips to |1⟩, ⟨Z⟩ = −1.
    }
}
