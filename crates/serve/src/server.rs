//! The job server: admission control, the content-addressed cache, and
//! a fair-share scheduler thread slicing concurrent jobs over one
//! shared [`ExecEngine`].

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use cafqa_core::fingerprint::{coefficient_vector, family_fingerprint, job_fingerprint};
use cafqa_core::{
    run_cafqa_resumable_on, CafqaResult, ExecEngine, RunControl, RunStatus, SearchCheckpoint,
};

use crate::cache::{CacheRecord, ResultCache};
use crate::job::{Disposition, JobId, JobOutcome, JobSpec, JobStatus, ServeError};

/// Server policy knobs.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Maximum jobs in flight (queued, running or suspended); further
    /// submissions reject with [`ServeError::QueueFull`] — the
    /// backpressure contract. Completed jobs do not count.
    pub capacity: usize,
    /// Live BO batches (one warm-up batch, then one per surrogate
    /// refit) a job runs per scheduler slice before it is suspended and
    /// requeued round-robin. Small slices keep one Cr2-class job from
    /// starving H2-sized ones; the checkpoint/resume bit-identity
    /// contract makes the slicing invisible in every result.
    pub slice_batches: usize,
    /// Warm-start near hits: seed a new job's search with the incumbent
    /// of the nearest completed same-family job (same term masks,
    /// nearest coefficients). Disable to make every non-cached job's
    /// effective inputs exactly its submitted inputs.
    pub warm_start: bool,
    /// Completed results kept in the cache (FIFO eviction beyond this).
    pub cache_capacity: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions { capacity: 64, slice_batches: 4, warm_start: true, cache_capacity: 256 }
    }
}

/// Lifetime serving statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServerStats {
    /// Jobs accepted by [`CafqaServer::submit`].
    pub submitted: u64,
    /// Jobs rejected at admission (validation or backpressure).
    pub rejected: u64,
    /// Jobs that finished with a result (fresh, warm-started or cached).
    pub completed: u64,
    /// Completions answered from the cache without recompute.
    pub cache_hits: u64,
    /// Completions that ran with an injected warm-start seed.
    pub warm_starts: u64,
    /// Jobs cancelled before completion.
    pub cancelled: u64,
    /// Jobs the runner failed mid-flight.
    pub failed: u64,
    /// Scheduler slices executed (suspensions + completions).
    pub slices: u64,
}

struct JobEntry {
    spec: JobSpec,
    /// Exact fingerprint of the spec as submitted.
    fingerprint_submitted: u64,
    /// Exact fingerprint of the spec actually run (differs from
    /// `fingerprint_submitted` when a warm-start seed was injected).
    fingerprint_effective: u64,
    family: u64,
    disposition: Disposition,
    status: JobStatus,
    checkpoint: Option<SearchCheckpoint>,
    outcome: Option<JobOutcome>,
    error: Option<String>,
    cancel: Arc<AtomicBool>,
}

struct ServerState {
    jobs: HashMap<u64, JobEntry>,
    /// Round-robin run queue of job ids.
    queue: VecDeque<u64>,
    cache: ResultCache,
    next_id: u64,
    in_flight: usize,
    shutdown: bool,
    stats: ServerStats,
}

struct Shared {
    engine: ExecEngine,
    opts: ServeOptions,
    state: Mutex<ServerState>,
    /// Wakes the scheduler (new work or shutdown).
    wake: Condvar,
    /// Wakes waiters (a job reached a terminal status).
    done: Condvar,
}

/// A long-running CAFQA job server over one shared engine. See the
/// crate docs for the serving model; construction starts the scheduler
/// thread, [`CafqaServer::shutdown`] (or drop) stops it after draining
/// in-flight jobs.
pub struct CafqaServer {
    shared: Arc<Shared>,
    scheduler: Option<JoinHandle<()>>,
}

impl CafqaServer {
    /// Starts a server scheduling onto `engine`.
    pub fn start(engine: ExecEngine, opts: ServeOptions) -> Self {
        let shared = Arc::new(Shared {
            engine,
            state: Mutex::new(ServerState {
                jobs: HashMap::new(),
                queue: VecDeque::new(),
                cache: ResultCache::new(opts.cache_capacity),
                next_id: 0,
                in_flight: 0,
                shutdown: false,
                stats: ServerStats::default(),
            }),
            opts,
            wake: Condvar::new(),
            done: Condvar::new(),
        });
        let scheduler = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("cafqa-serve-scheduler".into())
                .spawn(move || scheduler_loop(&shared))
                .expect("scheduler thread spawn failed")
        };
        CafqaServer { shared, scheduler: Some(scheduler) }
    }

    /// Submits a job. Validation failures, a full queue, and a
    /// shutting-down server reject with a structured [`ServeError`] —
    /// never a panic. An exact cache hit completes the job immediately
    /// (no queue slot consumed); otherwise the job enters the
    /// round-robin queue, possibly warm-started from the nearest cached
    /// same-family completion.
    pub fn submit(&self, spec: JobSpec) -> Result<JobId, ServeError> {
        let mut state = self.shared.state.lock().expect("server state poisoned");
        if state.shutdown {
            state.stats.rejected += 1;
            return Err(ServeError::ShuttingDown);
        }
        if let Err(err) = spec.validate() {
            state.stats.rejected += 1;
            return Err(err);
        }
        let penalties = spec.build_penalties();
        let fingerprint_submitted =
            job_fingerprint(&spec.ansatz, &spec.hamiltonian, &penalties, &spec.seeds, &spec.opts);
        let family = family_fingerprint(
            &spec.ansatz,
            &spec.hamiltonian,
            &penalties,
            &spec.seeds,
            &spec.opts,
        );
        let id = JobId(state.next_id);
        state.next_id += 1;
        state.stats.submitted += 1;
        // Exact hit on the as-submitted spec: completed on the spot.
        if let Some(record) = state.cache.get(fingerprint_submitted) {
            let outcome = JobOutcome {
                id,
                result: (*record.result).clone(),
                disposition: Disposition::CacheHit,
                seeds_used: record.seeds_used.clone(),
            };
            let entry = JobEntry {
                spec,
                fingerprint_submitted,
                fingerprint_effective: fingerprint_submitted,
                family,
                disposition: Disposition::CacheHit,
                status: JobStatus::Completed,
                checkpoint: None,
                outcome: Some(outcome),
                error: None,
                cancel: Arc::new(AtomicBool::new(false)),
            };
            state.jobs.insert(id.0, entry);
            state.stats.completed += 1;
            state.stats.cache_hits += 1;
            drop(state);
            self.shared.done.notify_all();
            return Ok(id);
        }
        // Backpressure: only jobs that will occupy the scheduler count.
        if state.in_flight >= self.shared.opts.capacity {
            state.stats.rejected += 1;
            return Err(ServeError::QueueFull { capacity: self.shared.opts.capacity });
        }
        // Near hit: warm-start from the nearest cached family member.
        let mut spec = spec;
        let mut disposition = Disposition::Fresh;
        if self.shared.opts.warm_start {
            let coefficients = coefficient_vector(&spec.hamiltonian);
            if let Some(donor) =
                state.cache.nearest_in_family(family, &coefficients, fingerprint_submitted)
            {
                spec.seeds.insert(0, donor.incumbent);
                disposition = Disposition::WarmStarted { distance: donor.distance };
            }
        }
        let fingerprint_effective = match disposition {
            Disposition::Fresh => fingerprint_submitted,
            _ => job_fingerprint(
                &spec.ansatz,
                &spec.hamiltonian,
                &penalties,
                &spec.seeds,
                &spec.opts,
            ),
        };
        // The effective spec may itself be cached (same donor chosen on
        // an earlier identical submission whose as-submitted alias was
        // since evicted): still an exact hit.
        if fingerprint_effective != fingerprint_submitted {
            if let Some(record) = state.cache.get(fingerprint_effective) {
                let outcome = JobOutcome {
                    id,
                    result: (*record.result).clone(),
                    disposition: Disposition::CacheHit,
                    seeds_used: record.seeds_used.clone(),
                };
                let entry = JobEntry {
                    spec,
                    fingerprint_submitted,
                    fingerprint_effective,
                    family,
                    disposition: Disposition::CacheHit,
                    status: JobStatus::Completed,
                    checkpoint: None,
                    outcome: Some(outcome),
                    error: None,
                    cancel: Arc::new(AtomicBool::new(false)),
                };
                state.jobs.insert(id.0, entry);
                state.stats.completed += 1;
                state.stats.cache_hits += 1;
                drop(state);
                self.shared.done.notify_all();
                return Ok(id);
            }
        }
        let entry = JobEntry {
            spec,
            fingerprint_submitted,
            fingerprint_effective,
            family,
            disposition,
            status: JobStatus::Queued,
            checkpoint: None,
            outcome: None,
            error: None,
            cancel: Arc::new(AtomicBool::new(false)),
        };
        state.jobs.insert(id.0, entry);
        state.queue.push_back(id.0);
        state.in_flight += 1;
        drop(state);
        self.shared.wake.notify_all();
        Ok(id)
    }

    /// The job's current lifecycle status.
    pub fn status(&self, id: JobId) -> Result<JobStatus, ServeError> {
        let state = self.shared.state.lock().expect("server state poisoned");
        state.jobs.get(&id.0).map(|e| e.status).ok_or(ServeError::UnknownJob(id))
    }

    /// Blocks until the job reaches a terminal status and returns its
    /// outcome (or the structured failure).
    pub fn wait(&self, id: JobId) -> Result<JobOutcome, ServeError> {
        let mut state = self.shared.state.lock().expect("server state poisoned");
        loop {
            let Some(entry) = state.jobs.get(&id.0) else {
                return Err(ServeError::UnknownJob(id));
            };
            match entry.status {
                JobStatus::Completed => {
                    return Ok(entry.outcome.clone().expect("completed jobs carry an outcome"));
                }
                JobStatus::Cancelled => return Err(ServeError::Cancelled(id)),
                JobStatus::Failed => {
                    return Err(ServeError::JobFailed {
                        id,
                        message: entry.error.clone().unwrap_or_default(),
                    });
                }
                _ => state = self.shared.done.wait(state).expect("server state poisoned"),
            }
        }
    }

    /// Requests cooperative cancellation. Queued jobs cancel before
    /// their first slice; running jobs stop at the next batch boundary.
    /// Returns whether the request landed on a live job (`false` once
    /// terminal).
    pub fn cancel(&self, id: JobId) -> Result<bool, ServeError> {
        let state = self.shared.state.lock().expect("server state poisoned");
        let Some(entry) = state.jobs.get(&id.0) else {
            return Err(ServeError::UnknownJob(id));
        };
        if entry.status.is_terminal() {
            return Ok(false);
        }
        entry.cancel.store(true, Ordering::Relaxed);
        drop(state);
        self.shared.wake.notify_all();
        Ok(true)
    }

    /// A snapshot of the lifetime statistics.
    pub fn stats(&self) -> ServerStats {
        self.shared.state.lock().expect("server state poisoned").stats
    }

    /// Number of cached completions currently held.
    pub fn cached_results(&self) -> usize {
        self.shared.state.lock().expect("server state poisoned").cache.len()
    }

    /// Stops admissions, drains every in-flight job (cancelled jobs
    /// stop at their next batch boundary), and joins the scheduler.
    /// Idempotent; also run by `Drop`.
    pub fn shutdown(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("server state poisoned");
            state.shutdown = true;
        }
        self.shared.wake.notify_all();
        if let Some(handle) = self.scheduler.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for CafqaServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One slice of one job, run outside the state lock.
enum SliceOutcome {
    Completed(CafqaResult),
    Suspended(SearchCheckpoint),
    Cancelled,
    Failed(String),
}

fn scheduler_loop(shared: &Shared) {
    loop {
        // Claim the next runnable job.
        let claimed = {
            let mut state = shared.state.lock().expect("server state poisoned");
            loop {
                if let Some(id) = state.queue.pop_front() {
                    break Some(id);
                }
                if state.shutdown {
                    break None;
                }
                state = shared.wake.wait(state).expect("server state poisoned");
            }
        };
        let Some(id) = claimed else { return };
        // Snapshot what the slice needs, mark Running.
        let (spec, penalties, checkpoint, cancel, slice_batches) = {
            let mut state = shared.state.lock().expect("server state poisoned");
            let entry = state.jobs.get_mut(&id).expect("queued jobs exist");
            if entry.cancel.load(Ordering::Relaxed) {
                entry.status = JobStatus::Cancelled;
                state.in_flight -= 1;
                state.stats.cancelled += 1;
                drop(state);
                shared.done.notify_all();
                continue;
            }
            entry.status = JobStatus::Running;
            (
                entry.spec.clone(),
                entry.spec.build_penalties(),
                entry.checkpoint.take(),
                Arc::clone(&entry.cancel),
                shared.opts.slice_batches.max(1),
            )
        };
        // Run one slice on the engine, lock released. The spec was
        // validated at admission, the checkpoint is self-produced, and
        // every runner error path is structured — nothing here can
        // panic the scheduler.
        let outcome = {
            let cancel_seen = &cancel;
            let status = run_cafqa_resumable_on(
                &shared.engine,
                &spec.ansatz,
                &spec.hamiltonian,
                penalties,
                &spec.seeds,
                &spec.opts,
                checkpoint.as_ref(),
                &mut |progress| {
                    if cancel_seen.load(Ordering::Relaxed) || progress.live_batches >= slice_batches
                    {
                        RunControl::Suspend
                    } else {
                        RunControl::Continue
                    }
                },
            );
            match status {
                Ok(RunStatus::Complete(result)) => SliceOutcome::Completed(result),
                Ok(RunStatus::Suspended(_)) if cancel.load(Ordering::Relaxed) => {
                    SliceOutcome::Cancelled
                }
                Ok(RunStatus::Suspended(checkpoint)) => SliceOutcome::Suspended(checkpoint),
                Err(err) => SliceOutcome::Failed(err.to_string()),
            }
        };
        // Publish the slice result.
        let mut state = shared.state.lock().expect("server state poisoned");
        state.stats.slices += 1;
        match outcome {
            SliceOutcome::Completed(result) => {
                let entry = state.jobs.get_mut(&id).expect("running jobs exist");
                entry.status = JobStatus::Completed;
                let disposition = entry.disposition;
                let outcome = JobOutcome {
                    id: JobId(id),
                    result: result.clone(),
                    disposition,
                    seeds_used: entry.spec.seeds.clone(),
                };
                entry.outcome = Some(outcome);
                let record = CacheRecord {
                    keys: if entry.fingerprint_submitted == entry.fingerprint_effective {
                        vec![entry.fingerprint_submitted]
                    } else {
                        vec![entry.fingerprint_submitted, entry.fingerprint_effective]
                    },
                    family: entry.family,
                    coefficients: coefficient_vector(&entry.spec.hamiltonian),
                    incumbent: result.best_config.clone(),
                    result: Arc::new(result),
                    seeds_used: entry.spec.seeds.clone(),
                };
                state.cache.insert(record);
                state.in_flight -= 1;
                state.stats.completed += 1;
                if matches!(state.jobs[&id].disposition, Disposition::WarmStarted { .. }) {
                    state.stats.warm_starts += 1;
                }
                drop(state);
                shared.done.notify_all();
            }
            SliceOutcome::Suspended(checkpoint) => {
                let entry = state.jobs.get_mut(&id).expect("running jobs exist");
                entry.status = JobStatus::Suspended;
                entry.checkpoint = Some(checkpoint);
                state.queue.push_back(id);
            }
            SliceOutcome::Cancelled => {
                let entry = state.jobs.get_mut(&id).expect("running jobs exist");
                entry.status = JobStatus::Cancelled;
                state.in_flight -= 1;
                state.stats.cancelled += 1;
                drop(state);
                shared.done.notify_all();
            }
            SliceOutcome::Failed(message) => {
                let entry = state.jobs.get_mut(&id).expect("running jobs exist");
                entry.status = JobStatus::Failed;
                entry.error = Some(message);
                state.in_flight -= 1;
                state.stats.failed += 1;
                drop(state);
                shared.done.notify_all();
            }
        }
    }
}
