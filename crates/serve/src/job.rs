//! Job API types: submissions, statuses, outcomes, and the structured
//! errors that replace every panic on the serving path.

use cafqa_circuit::{Ansatz, EfficientSu2};
use cafqa_core::{classify_ising, CafqaOptions, CafqaResult, IsingFastPath, Penalty};
use cafqa_pauli::PauliOp;

/// Opaque handle to a submitted job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job-{}", self.0)
    }
}

/// A sector penalty in submission form: the raw operator plus its
/// target eigenvalue and weight, exactly the arguments of
/// [`Penalty::new`] (the squared shifted operator is formed at job
/// start, not by the submitter).
#[derive(Debug, Clone)]
pub struct PenaltySpec {
    /// Human-readable label ("electron count", "sz", …).
    pub label: String,
    /// The constrained operator `O`.
    pub op: PauliOp,
    /// The target eigenvalue of `O` in the wanted sector.
    pub target: f64,
    /// Penalty weight.
    pub weight: f64,
}

impl PenaltySpec {
    /// Convenience constructor.
    pub fn new(label: impl Into<String>, op: PauliOp, target: f64, weight: f64) -> Self {
        PenaltySpec { label: label.into(), op, target, weight }
    }

    /// Builds the runner-side [`Penalty`].
    pub(crate) fn build(&self) -> Penalty {
        Penalty::new(self.label.clone(), &self.op, self.target, self.weight)
    }
}

/// A complete CAFQA job submission. The server owns everything it runs
/// (the ansatz is the concrete [`EfficientSu2`] so specs are `Send` and
/// hashable), and every field participates in the job's content
/// fingerprint — see
/// [`cafqa_core::fingerprint`](cafqa_core::fingerprint) for exactly
/// which [`CafqaOptions`] fields count.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// The hardware-efficient ansatz to search.
    pub ansatz: EfficientSu2,
    /// The Hamiltonian to minimize.
    pub hamiltonian: PauliOp,
    /// Sector penalties (empty for unconstrained problems).
    pub penalties: Vec<PenaltySpec>,
    /// Seed configurations (e.g. the HF state). Each must have exactly
    /// `ansatz.num_parameters()` entries in `0..4`.
    pub seeds: Vec<Vec<usize>>,
    /// Search budget and determinism knobs.
    pub opts: CafqaOptions,
}

impl JobSpec {
    /// A spec with no penalties and no seeds.
    pub fn new(ansatz: EfficientSu2, hamiltonian: PauliOp, opts: CafqaOptions) -> Self {
        JobSpec { ansatz, hamiltonian, penalties: Vec::new(), seeds: Vec::new(), opts }
    }

    /// Builds the runner-side penalty list.
    pub(crate) fn build_penalties(&self) -> Vec<Penalty> {
        self.penalties.iter().map(PenaltySpec::build).collect()
    }

    /// Validates everything that could trip a `panic!`/`assert!` deeper
    /// in the stack, so the scheduler thread only ever runs specs that
    /// cannot kill it. Returns the first violation as a structured
    /// [`ServeError`].
    pub(crate) fn validate(&self) -> Result<(), ServeError> {
        let nq = self.ansatz.num_qubits();
        if self.hamiltonian.num_qubits() != nq {
            return Err(ServeError::QubitMismatch {
                what: "hamiltonian",
                ansatz: nq,
                found: self.hamiltonian.num_qubits(),
            });
        }
        for p in &self.penalties {
            if p.op.num_qubits() != nq {
                return Err(ServeError::QubitMismatch {
                    what: "penalty operator",
                    ansatz: nq,
                    found: p.op.num_qubits(),
                });
            }
        }
        let d = self.ansatz.num_parameters();
        for (index, seed) in self.seeds.iter().enumerate() {
            if seed.len() != d {
                return Err(ServeError::BadSeed {
                    index,
                    reason: format!("has {} entries, the ansatz has {d} parameters", seed.len()),
                });
            }
            if let Some(&v) = seed.iter().find(|&&v| v >= 4) {
                return Err(ServeError::BadSeed {
                    index,
                    reason: format!("entry {v} out of the Clifford angle range 0..4"),
                });
            }
        }
        // `IsingFastPath::Force` panics inside the runner when the
        // instance cannot route — on a server that must become a
        // rejection at the door. Accept Force only when routing is
        // provably possible: no penalties, classified structure, and an
        // ansatz that lifts eigenstates of the classified bases.
        if self.opts.ising_fast_path == IsingFastPath::Force {
            if !self.penalties.is_empty() {
                return Err(ServeError::NotIsingClass {
                    reason: "penalties require the full objective".into(),
                });
            }
            let Some(form) = classify_ising(&self.hamiltonian) else {
                return Err(ServeError::NotIsingClass {
                    reason: "the Hamiltonian did not classify as Ising-class".into(),
                });
            };
            if self.ansatz.eigenstate_config(0, &form.bases).is_none() {
                return Err(ServeError::NotIsingClass {
                    reason: "the ansatz has no eigenstate lift for the classified bases".into(),
                });
            }
        }
        Ok(())
    }
}

/// Where a job's result came from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Disposition {
    /// Computed from scratch (no cache involvement).
    Fresh,
    /// Returned from the content-addressed cache without recompute.
    CacheHit,
    /// Computed, but warm-started: the incumbent of the nearest cached
    /// same-family job (same term masks, coefficients at this L2
    /// distance) was prepended to the seed list.
    WarmStarted {
        /// L2 distance between the two canonical coefficient vectors.
        distance: f64,
    },
}

/// Lifecycle of a submitted job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Waiting for its first scheduler slice.
    Queued,
    /// Currently running a slice on the engine.
    Running,
    /// Between slices, checkpointed; will be rescheduled round-robin.
    Suspended,
    /// Finished; the outcome is available.
    Completed,
    /// Cancelled before completion.
    Cancelled,
    /// Rejected by the runner mid-flight (does not happen for specs
    /// that passed validation; kept for API totality).
    Failed,
}

impl JobStatus {
    /// Whether the job will never run again.
    pub fn is_terminal(self) -> bool {
        matches!(self, JobStatus::Completed | JobStatus::Cancelled | JobStatus::Failed)
    }
}

/// A completed job's result plus its provenance.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// The job this outcome belongs to.
    pub id: JobId,
    /// The search result — bit-identical to a fresh
    /// [`run_cafqa_on`](cafqa_core::run_cafqa_on) with the same
    /// effective inputs ([`seeds_used`](Self::seeds_used)).
    pub result: CafqaResult,
    /// Cache hit, warm start, or fresh compute.
    pub disposition: Disposition,
    /// The *effective* seed list the search ran with: the submitted
    /// seeds, preceded by the warm-start incumbent when one was
    /// injected. Part of the job's content fingerprint, so equal
    /// effective inputs ⇒ bit-identical results.
    pub seeds_used: Vec<Vec<usize>>,
}

/// Structured rejection/failure codes of the serving API — the
/// panic-free contract: no submission, however malformed or oversized,
/// reaches an `assert!` in the search stack.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The admission queue is at capacity; resubmit after a completion.
    QueueFull {
        /// The configured in-flight capacity.
        capacity: usize,
    },
    /// An operator acts on a different register than the ansatz.
    QubitMismatch {
        /// Which operator ("hamiltonian" / "penalty operator").
        what: &'static str,
        /// The ansatz register width.
        ansatz: usize,
        /// The operator's width.
        found: usize,
    },
    /// A seed configuration is malformed.
    BadSeed {
        /// Index into [`JobSpec::seeds`].
        index: usize,
        /// What is wrong with it.
        reason: String,
    },
    /// `IsingFastPath::Force` was requested for an instance that cannot
    /// route (the runner would panic; the server rejects instead).
    NotIsingClass {
        /// Why the instance cannot take the fast path.
        reason: String,
    },
    /// The server is shutting down and accepts no new work.
    ShuttingDown,
    /// No job with this id was ever submitted.
    UnknownJob(JobId),
    /// The job was cancelled before completing.
    Cancelled(JobId),
    /// The runner rejected the job mid-flight.
    JobFailed {
        /// The failing job.
        id: JobId,
        /// The runner's error message.
        message: String,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::QueueFull { capacity } => {
                write!(f, "job queue at capacity ({capacity} in flight)")
            }
            ServeError::QubitMismatch { what, ansatz, found } => {
                write!(f, "{what} acts on {found} qubits, the ansatz on {ansatz}")
            }
            ServeError::BadSeed { index, reason } => write!(f, "seed {index} {reason}"),
            ServeError::NotIsingClass { reason } => {
                write!(f, "ising_fast_path = Force rejected: {reason}")
            }
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::UnknownJob(id) => write!(f, "unknown {id}"),
            ServeError::Cancelled(id) => write!(f, "{id} was cancelled"),
            ServeError::JobFailed { id, message } => write!(f, "{id} failed: {message}"),
        }
    }
}

impl std::error::Error for ServeError {}

#[cfg(test)]
mod tests {
    use super::*;
    use cafqa_linalg::Complex64;
    use cafqa_pauli::PauliString;

    fn op(n: usize, terms: &[(f64, &str)]) -> PauliOp {
        let mut h = PauliOp::zero(n);
        for &(w, s) in terms {
            h.add_term(Complex64::from(w), s.parse::<PauliString>().unwrap());
        }
        h
    }

    #[test]
    fn validation_rejects_each_malformation_structurally() {
        let ansatz = EfficientSu2::new(3, 1);
        let h = op(3, &[(1.0, "ZZI")]);
        let good = JobSpec::new(ansatz.clone(), h.clone(), CafqaOptions::quick());
        assert!(good.validate().is_ok());
        // Register mismatch.
        let bad = JobSpec::new(ansatz.clone(), op(2, &[(1.0, "ZZ")]), CafqaOptions::quick());
        assert_eq!(
            bad.validate(),
            Err(ServeError::QubitMismatch { what: "hamiltonian", ansatz: 3, found: 2 })
        );
        // Penalty register mismatch.
        let mut bad = good.clone();
        bad.penalties.push(PenaltySpec::new("n", op(4, &[(1.0, "ZIII")]), 1.0, 1.0));
        assert!(matches!(
            bad.validate(),
            Err(ServeError::QubitMismatch { what: "penalty operator", .. })
        ));
        // Wrong seed length and out-of-range seed entry.
        let mut bad = good.clone();
        bad.seeds.push(vec![0; 3]);
        assert!(matches!(bad.validate(), Err(ServeError::BadSeed { index: 0, .. })));
        let mut bad = good.clone();
        bad.seeds.push(vec![0; 12]);
        bad.seeds.push(vec![4; 12]);
        assert!(matches!(bad.validate(), Err(ServeError::BadSeed { index: 1, .. })));
        // Force on a non-Ising instance rejects instead of panicking.
        let mut bad = JobSpec::new(
            ansatz.clone(),
            op(3, &[(0.5, "XII"), (0.5, "ZII")]),
            CafqaOptions::quick(),
        );
        bad.opts.ising_fast_path = IsingFastPath::Force;
        assert!(matches!(bad.validate(), Err(ServeError::NotIsingClass { .. })));
        // Force on a penalized instance rejects too.
        let mut bad = good.clone();
        bad.opts.ising_fast_path = IsingFastPath::Force;
        bad.penalties.push(PenaltySpec::new("n", op(3, &[(1.0, "ZII")]), 1.0, 1.0));
        assert!(matches!(bad.validate(), Err(ServeError::NotIsingClass { .. })));
        // Force on a routable instance is accepted.
        let mut ok = good.clone();
        ok.opts.ising_fast_path = IsingFastPath::Force;
        assert!(ok.validate().is_ok());
    }
}
