//! The content-addressed result cache: exact hits by job fingerprint,
//! near hits (warm-start donors) by family fingerprint plus coefficient
//! distance.
//!
//! Keys come from [`cafqa_core::fingerprint`]: the **exact** key hashes
//! the canonical sorted mask-form term set *with* coefficient bits,
//! penalties, ansatz shape, seeds and the determinism-relevant
//! [`CafqaOptions`](cafqa_core::CafqaOptions) fields, so an exact match
//! means a bit-identical result by the workspace determinism contracts.
//! The **family** key drops only the Hamiltonian coefficients: jobs in
//! one family differ in coefficients alone (e.g. neighbouring bond
//! lengths), which makes the cached incumbent genome a sound warm-start
//! seed for a new family member.
//!
//! A record is findable under *two* exact keys — the fingerprint of the
//! spec as submitted and the fingerprint of the spec the search
//! actually ran (submitted seeds plus an injected warm-start
//! incumbent). Resubmitting a spec therefore hits the cache regardless
//! of whether its first run was warm-started, and before any donor
//! lookup can pick a different (e.g. the job's own) incumbent.
//!
//! Eviction is bounded FIFO in completion order — deterministic, so a
//! replayed submission sequence sees identical hits and misses.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use cafqa_core::fingerprint::coefficient_distance;
use cafqa_core::CafqaResult;

/// One cached completion.
#[derive(Debug)]
pub(crate) struct CacheRecord {
    /// Every exact fingerprint this record answers for (as-submitted
    /// and effective; equal for never-warm-started jobs).
    pub keys: Vec<u64>,
    /// The family (structure-only) fingerprint.
    pub family: u64,
    /// Canonical coefficient vector of the Hamiltonian (the near-hit
    /// distance embedding).
    pub coefficients: Vec<f64>,
    /// The best configuration found — the warm-start genome donated to
    /// near hits.
    pub incumbent: Vec<usize>,
    /// The full result returned on exact hits.
    pub result: Arc<CafqaResult>,
    /// The effective seed list the cached search ran with.
    pub seeds_used: Vec<Vec<usize>>,
}

/// A warm-start donor picked from the cache.
#[derive(Debug, Clone)]
pub(crate) struct Donor {
    /// The donated incumbent configuration.
    pub incumbent: Vec<usize>,
    /// L2 coefficient distance between donor and recipient.
    pub distance: f64,
}

/// Bounded content-addressed cache; see the module notes for the key
/// scheme and determinism properties.
#[derive(Debug)]
pub(crate) struct ResultCache {
    capacity: usize,
    /// Record storage keyed by insertion id.
    records: HashMap<u64, CacheRecord>,
    /// exact fingerprint → record id.
    by_key: HashMap<u64, u64>,
    /// family fingerprint → record ids in insertion order (the
    /// deterministic donor scan order).
    by_family: HashMap<u64, Vec<u64>>,
    /// Insertion order for FIFO eviction.
    order: VecDeque<u64>,
    next_id: u64,
    /// Lifetime counters: (exact lookups, exact hits).
    pub lookups: u64,
    /// Exact hits served.
    pub hits: u64,
}

impl ResultCache {
    pub fn new(capacity: usize) -> Self {
        ResultCache {
            capacity: capacity.max(1),
            records: HashMap::new(),
            by_key: HashMap::new(),
            by_family: HashMap::new(),
            order: VecDeque::new(),
            next_id: 0,
            lookups: 0,
            hits: 0,
        }
    }

    /// Number of cached completions.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Exact lookup (counts toward the hit-rate statistics).
    pub fn get(&mut self, fingerprint: u64) -> Option<&CacheRecord> {
        self.lookups += 1;
        let id = *self.by_key.get(&fingerprint)?;
        self.hits += 1;
        self.records.get(&id)
    }

    /// The nearest same-family donor by coefficient distance (ties keep
    /// the earliest-inserted record, so donor choice is deterministic
    /// in completion order). `exclude` skips records carrying that
    /// exact key — never donate a job to itself.
    pub fn nearest_in_family(
        &self,
        family: u64,
        coefficients: &[f64],
        exclude: u64,
    ) -> Option<Donor> {
        let ids = self.by_family.get(&family)?;
        let mut best: Option<Donor> = None;
        for id in ids {
            let record = &self.records[id];
            if record.keys.contains(&exclude) {
                continue;
            }
            let Some(distance) = coefficient_distance(&record.coefficients, coefficients) else {
                continue;
            };
            if best.as_ref().map_or(true, |b| distance < b.distance) {
                best = Some(Donor { incumbent: record.incumbent.clone(), distance });
            }
        }
        best
    }

    /// Inserts a completion, evicting the oldest record when over
    /// capacity. Keys already present are re-pointed at the new record
    /// (identical content by the determinism contract, so this only
    /// refreshes recency metadata).
    pub fn insert(&mut self, record: CacheRecord) {
        let id = self.next_id;
        self.next_id += 1;
        for &key in &record.keys {
            self.by_key.insert(key, id);
        }
        self.by_family.entry(record.family).or_default().push(id);
        self.records.insert(id, record);
        self.order.push_back(id);
        while self.records.len() > self.capacity {
            let Some(old) = self.order.pop_front() else { break };
            let Some(record) = self.records.remove(&old) else { continue };
            for key in &record.keys {
                if self.by_key.get(key) == Some(&old) {
                    self.by_key.remove(key);
                }
            }
            if let Some(ids) = self.by_family.get_mut(&record.family) {
                ids.retain(|&i| i != old);
                if ids.is_empty() {
                    self.by_family.remove(&record.family);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cafqa_core::SearchPoint;

    fn result(tag: f64) -> Arc<CafqaResult> {
        Arc::new(CafqaResult {
            best_config: vec![0, 1],
            energy: tag,
            penalized: tag,
            trace: vec![SearchPoint { energy: tag, penalized: tag, best_so_far: tag }],
            iterations_to_best: 1,
            evaluations: 1,
            polish_evaluations: 0,
            bo_seconds: 0.0,
            polish_seconds: 0.0,
            polish_seek_stats: (0, 0),
        })
    }

    fn record(keys: Vec<u64>, family: u64, coefficients: Vec<f64>, tag: f64) -> CacheRecord {
        CacheRecord {
            keys,
            family,
            coefficients,
            incumbent: vec![tag as usize, 0],
            result: result(tag),
            seeds_used: vec![],
        }
    }

    #[test]
    fn exact_hits_answer_under_every_key_and_count() {
        let mut cache = ResultCache::new(8);
        cache.insert(record(vec![10, 11], 99, vec![1.0], 1.0));
        assert!(cache.get(10).is_some(), "as-submitted key");
        assert!(cache.get(11).is_some(), "effective key");
        assert!(cache.get(12).is_none());
        assert_eq!((cache.lookups, cache.hits), (3, 2));
    }

    #[test]
    fn nearest_donor_is_deterministic_and_never_self() {
        let mut cache = ResultCache::new(8);
        cache.insert(record(vec![1], 7, vec![1.0, 0.0], 1.0));
        cache.insert(record(vec![2], 7, vec![1.1, 0.0], 2.0));
        cache.insert(record(vec![3], 8, vec![1.05, 0.0], 3.0)); // other family
        let donor = cache.nearest_in_family(7, &[1.08, 0.0], 0).unwrap();
        assert_eq!(donor.incumbent, vec![2, 0], "record 2 is closer");
        // Excluding the nearest record falls back to the next one.
        let donor = cache.nearest_in_family(7, &[1.08, 0.0], 2).unwrap();
        assert_eq!(donor.incumbent, vec![1, 0]);
        // Exact distance ties keep the earliest-inserted record.
        cache.insert(record(vec![4], 11, vec![0.0], 4.0));
        cache.insert(record(vec![5], 11, vec![2.0], 5.0));
        let donor = cache.nearest_in_family(11, &[1.0], 0).unwrap();
        assert_eq!(donor.incumbent, vec![4, 0], "strict < keeps the first of a tie");
        // Unknown family, or a family whose members all mismatch in
        // vector length: no donor.
        assert!(cache.nearest_in_family(42, &[1.0], 0).is_none());
        assert!(cache.nearest_in_family(8, &[1.0, 2.0, 3.0], 0).is_none());
    }

    #[test]
    fn eviction_is_fifo_and_scrubs_every_index() {
        let mut cache = ResultCache::new(2);
        cache.insert(record(vec![1, 100], 7, vec![1.0], 1.0));
        cache.insert(record(vec![2], 7, vec![2.0], 2.0));
        cache.insert(record(vec![3], 9, vec![3.0], 3.0)); // evicts record 1
        assert_eq!(cache.len(), 2);
        assert!(cache.get(1).is_none());
        assert!(cache.get(100).is_none(), "alias keys evict with the record");
        assert!(cache.get(2).is_some());
        assert!(cache.get(3).is_some());
        let donor = cache.nearest_in_family(7, &[1.0], 0).unwrap();
        assert_eq!(donor.incumbent, vec![2, 0], "evicted records leave the family index");
    }
}
