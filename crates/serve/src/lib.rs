//! CAFQA-as-a-service: a multi-tenant job server over the shared
//! [`ExecEngine`](cafqa_core::ExecEngine).
//!
//! # Serving model
//!
//! [`CafqaServer::start`] spawns one scheduler thread that round-robins
//! **slices** of Bayesian-optimization work between all queued jobs:
//! each slice runs a bounded number of live BO batches (one warm-up
//! batch, then one batch per surrogate refit), then suspends the job
//! into a [checkpoint](cafqa_core::SearchCheckpoint) and requeues it at
//! the back. A small Cr2-class job submitted behind a large one
//! therefore completes after a handful of slices instead of waiting for
//! the large job's entire search — fair-share scheduling without
//! preemptive threads.
//!
//! Suspension is built on replay-based resume: BO decisions are a pure
//! function of the seed and the returned objective values, so resuming
//! from a checkpoint re-serves the recorded values (skipping the
//! expensive objective evaluations) and lands in exactly the state an
//! uninterrupted run would occupy. **A job sliced N ways is
//! bit-identical to the same job run solo**, at any engine worker
//! count.
//!
//! # Content-addressed caching and warm starts
//!
//! Completed results enter a bounded cache keyed by a canonical
//! fingerprint of the job identity (see [`cafqa_core::fingerprint`]).
//! An exact resubmission returns the cached
//! [`CafqaResult`](cafqa_core::CafqaResult) without recompute; a *near*
//! submission — same term masks, different coefficients, e.g. a
//! neighbouring bond length — is warm-started by injecting the nearest
//! cached incumbent as its first seed (disable with
//! [`ServeOptions::warm_start`]).
//!
//! # Panic-free serving
//!
//! Every error reachable from the serve API is a structured
//! [`ServeError`]: malformed specs reject at [`CafqaServer::submit`],
//! oversized Ising routes reject at validation, a full queue
//! backpressures with [`ServeError::QueueFull`], and runner failures
//! surface through [`CafqaServer::wait`] as [`ServeError::JobFailed`].
//!
//! ```
//! use cafqa_circuit::EfficientSu2;
//! use cafqa_core::{CafqaOptions, ExecEngine};
//! use cafqa_pauli::PauliOp;
//! use cafqa_serve::{CafqaServer, Disposition, JobSpec, ServeOptions};
//!
//! let ham: PauliOp = "0.5*ZZ + 0.25*XX".parse().unwrap();
//! let opts = CafqaOptions { warmup: 8, iterations: 8, ..Default::default() };
//! let mut server = CafqaServer::start(ExecEngine::serial(), ServeOptions::default());
//! let spec = JobSpec::new(EfficientSu2::new(2, 1), ham, opts);
//! let first = server.submit(spec.clone()).unwrap();
//! let first = server.wait(first).unwrap();
//! let again = server.submit(spec).unwrap();
//! let again = server.wait(again).unwrap();
//! assert!(matches!(again.disposition, Disposition::CacheHit));
//! assert_eq!(first.result.energy.to_bits(), again.result.energy.to_bits());
//! server.shutdown();
//! ```

mod cache;
mod job;
mod server;

pub use job::{Disposition, JobId, JobOutcome, JobSpec, JobStatus, PenaltySpec, ServeError};
pub use server::{CafqaServer, ServeOptions, ServerStats};
