//! Service-level determinism and panic-free-serving suite.
//!
//! The contracts under test (ISSUE 10 acceptance criteria):
//! - an exact resubmission is a cache hit, bit-identical to the fresh
//!   run that populated the cache;
//! - a served (sliced, possibly warm-started) job is bit-identical to a
//!   solo [`run_cafqa_on`] with the same effective inputs, at engine
//!   worker counts 1, 2 and 8;
//! - concurrent submissions do not perturb each other's results;
//! - malformed and oversized submissions reject with structured errors,
//!   never a panic; cancellation and backpressure behave as documented.

use cafqa_circuit::EfficientSu2;
use cafqa_core::{run_cafqa_on, CafqaOptions, CafqaResult, ExecEngine};
use cafqa_linalg::Complex64;
use cafqa_pauli::{PauliOp, PauliString};
use cafqa_serve::{CafqaServer, Disposition, JobSpec, JobStatus, ServeError, ServeOptions};

fn op(n: usize, terms: &[(f64, &str)]) -> PauliOp {
    let mut h = PauliOp::zero(n);
    for &(w, s) in terms {
        h.add_term(Complex64::from(w), s.parse::<PauliString>().unwrap());
    }
    h
}

/// A 3-qubit mixed-column Hamiltonian (never routes to the Ising fast
/// path) with a tunable "bond" knob that scales two coefficients, so
/// nearby knobs are same-family near hits.
fn hamiltonian(bond: f64) -> PauliOp {
    op(
        3,
        &[
            (0.5, "XXI"),
            (0.25 * bond, "ZZI"),
            (-0.1, "YIZ"),
            (0.7 * bond, "IZZ"),
            (0.3, "XIX"),
            (-0.2, "IYY"),
        ],
    )
}

fn opts() -> CafqaOptions {
    CafqaOptions { warmup: 24, iterations: 48, polish_sweeps: 2, ..Default::default() }
}

fn spec(bond: f64) -> JobSpec {
    JobSpec::new(EfficientSu2::new(3, 1), hamiltonian(bond), opts())
}

/// Full bitwise comparison of two results (mirrors the core suite).
fn assert_results_bitwise(a: &CafqaResult, b: &CafqaResult, what: &str) {
    assert_eq!(a.best_config, b.best_config, "{what}: best_config");
    assert_eq!(a.energy.to_bits(), b.energy.to_bits(), "{what}: energy");
    assert_eq!(a.penalized.to_bits(), b.penalized.to_bits(), "{what}: penalized");
    assert_eq!(a.evaluations, b.evaluations, "{what}: evaluations");
    assert_eq!(a.polish_evaluations, b.polish_evaluations, "{what}: polish_evaluations");
    assert_eq!(a.iterations_to_best, b.iterations_to_best, "{what}: iterations_to_best");
    assert_eq!(a.trace.len(), b.trace.len(), "{what}: trace length");
    for (i, (x, y)) in a.trace.iter().zip(&b.trace).enumerate() {
        assert_eq!(x.energy.to_bits(), y.energy.to_bits(), "{what}: trace[{i}].energy");
        assert_eq!(x.penalized.to_bits(), y.penalized.to_bits(), "{what}: trace[{i}].penalized");
        assert_eq!(
            x.best_so_far.to_bits(),
            y.best_so_far.to_bits(),
            "{what}: trace[{i}].best_so_far"
        );
    }
}

/// Solo reference: the same effective inputs through the plain runner.
fn solo(engine: &ExecEngine, spec: &JobSpec, seeds: &[Vec<usize>]) -> CafqaResult {
    run_cafqa_on(engine, &spec.ansatz, &spec.hamiltonian, Vec::new(), seeds, &spec.opts)
}

#[test]
fn resubmission_is_a_bit_identical_cache_hit() {
    let engine = ExecEngine::new(2);
    let mut server = CafqaServer::start(engine.clone(), ServeOptions::default());
    let first = server.wait(server.submit(spec(1.0)).unwrap()).unwrap();
    assert_eq!(first.disposition, Disposition::Fresh);
    // The fresh serve equals the solo runner on the same inputs.
    let reference = solo(&engine, &spec(1.0), &first.seeds_used);
    assert_results_bitwise(&first.result, &reference, "fresh serve vs solo");
    // Exact resubmission: cache hit, no recompute, identical bits.
    let again = server.wait(server.submit(spec(1.0)).unwrap()).unwrap();
    assert_eq!(again.disposition, Disposition::CacheHit);
    assert_eq!(again.seeds_used, first.seeds_used);
    assert_results_bitwise(&again.result, &first.result, "cache hit vs fresh");
    let stats = server.stats();
    assert_eq!(stats.completed, 2);
    assert_eq!(stats.cache_hits, 1);
    server.shutdown();
}

#[test]
fn sliced_serving_matches_solo_at_every_worker_count() {
    // The serial engine is the bit-identity reference for all pools.
    let reference = solo(&ExecEngine::serial(), &spec(1.0), &[]);
    for workers in [1usize, 2, 8] {
        let engine = ExecEngine::new(workers);
        // One live batch per slice maximizes suspension churn.
        let serve_opts = ServeOptions { slice_batches: 1, warm_start: false, ..Default::default() };
        let mut server = CafqaServer::start(engine, serve_opts);
        let outcome = server.wait(server.submit(spec(1.0)).unwrap()).unwrap();
        assert_eq!(outcome.disposition, Disposition::Fresh);
        let stats = server.stats();
        assert!(
            stats.slices > 3,
            "a 48-iteration search at 1 batch/slice must take many slices, got {}",
            stats.slices
        );
        assert_results_bitwise(
            &outcome.result,
            &reference,
            &format!("sliced @ {workers} workers vs solo serial"),
        );
        server.shutdown();
    }
}

#[test]
fn concurrent_jobs_are_bit_identical_to_solo_runs() {
    let bonds = [0.8, 1.0, 1.3];
    let serial = ExecEngine::serial();
    let references: Vec<CafqaResult> =
        bonds.iter().map(|&b| solo(&serial, &spec(b), &[])).collect();
    for workers in [1usize, 2, 8] {
        let engine = ExecEngine::new(workers);
        // warm_start off: cross-job seeding would change effective
        // inputs (still deterministic, but not equal to the solo refs).
        let serve_opts = ServeOptions { slice_batches: 2, warm_start: false, ..Default::default() };
        let mut server = CafqaServer::start(engine, serve_opts);
        let ids: Vec<_> = bonds.iter().map(|&b| server.submit(spec(b)).unwrap()).collect();
        for ((id, reference), bond) in ids.into_iter().zip(&references).zip(bonds) {
            let outcome = server.wait(id).unwrap();
            assert_results_bitwise(
                &outcome.result,
                reference,
                &format!("bond {bond} @ {workers} workers, 3 concurrent jobs"),
            );
        }
        server.shutdown();
    }
}

#[test]
fn warm_start_seeds_from_family_and_matches_solo_with_effective_seeds() {
    let engine = ExecEngine::new(2);
    let mut server = CafqaServer::start(engine.clone(), ServeOptions::default());
    let donor = server.wait(server.submit(spec(1.0)).unwrap()).unwrap();
    assert_eq!(donor.disposition, Disposition::Fresh);
    // A neighbouring bond is a near hit: same masks, close coefficients.
    let near = server.wait(server.submit(spec(1.05)).unwrap()).unwrap();
    let Disposition::WarmStarted { distance } = near.disposition else {
        panic!("neighbouring bond should warm-start, got {:?}", near.disposition);
    };
    assert!(distance > 0.0 && distance < 0.1, "small coefficient distance, got {distance}");
    assert_eq!(
        near.seeds_used,
        vec![donor.result.best_config.clone()],
        "the donor incumbent is the injected seed"
    );
    // Warm-started serve ≡ solo runner with the effective seed list.
    let reference = solo(&engine, &spec(1.05), &near.seeds_used);
    assert_results_bitwise(&near.result, &reference, "warm start vs solo with donor seed");
    // Warm start never loses to its seed.
    let seed_energy = donor.result.energy;
    assert!(
        near.result.energy <= seed_energy + 1e-12,
        "warm-started energy {} worse than donor incumbent energy {}",
        near.result.energy,
        seed_energy
    );
    // Resubmitting the warm-started job hits the cache (dual-key
    // records: findable under the as-submitted fingerprint even though
    // it ran with an injected seed).
    let again = server.wait(server.submit(spec(1.05)).unwrap()).unwrap();
    assert_eq!(again.disposition, Disposition::CacheHit);
    assert_results_bitwise(&again.result, &near.result, "warm-start resubmission");
    assert_eq!(server.stats().warm_starts, 1);
    server.shutdown();
}

#[test]
fn fair_share_lets_a_short_job_finish_behind_a_long_one() {
    let engine = ExecEngine::new(2);
    let serve_opts = ServeOptions { slice_batches: 1, warm_start: false, ..Default::default() };
    let mut server = CafqaServer::start(engine, serve_opts);
    let mut long = spec(1.0);
    long.opts.warmup = 60;
    long.opts.iterations = 400;
    long.opts.patience = usize::MAX;
    let long_id = server.submit(long).unwrap();
    let mut short = spec(1.1);
    short.opts.warmup = 8;
    short.opts.iterations = 8;
    let short_id = server.submit(short).unwrap();
    // Round-robin slices must complete the short job while the long one
    // is still in flight.
    server.wait(short_id).unwrap();
    let long_status = server.status(long_id).unwrap();
    assert!(
        !long_status.is_terminal(),
        "long job should still be in flight when the short one finishes, got {long_status:?}"
    );
    assert!(server.cancel(long_id).unwrap());
    assert!(matches!(server.wait(long_id), Err(ServeError::Cancelled(id)) if id == long_id));
    assert_eq!(server.stats().cancelled, 1);
    server.shutdown();
}

#[test]
fn queued_jobs_cancel_before_running() {
    let engine = ExecEngine::serial();
    let serve_opts = ServeOptions { slice_batches: 1, warm_start: false, ..Default::default() };
    let mut server = CafqaServer::start(engine, serve_opts);
    let mut long = spec(1.0);
    long.opts.iterations = 400;
    long.opts.patience = usize::MAX;
    let long_id = server.submit(long).unwrap();
    let queued_id = server.submit(spec(1.2)).unwrap();
    assert!(server.cancel(queued_id).unwrap());
    assert!(matches!(server.wait(queued_id), Err(ServeError::Cancelled(_))));
    server.cancel(long_id).unwrap();
    let _ = server.wait(long_id);
    // Cancelling a terminal job is a no-op, not an error.
    assert!(!server.cancel(queued_id).unwrap());
    server.shutdown();
}

#[test]
fn backpressure_and_structured_rejections_never_panic() {
    let engine = ExecEngine::serial();
    let serve_opts = ServeOptions { capacity: 2, warm_start: false, ..Default::default() };
    let mut server = CafqaServer::start(engine, serve_opts);
    // Malformed specs reject at the door.
    let wrong_register = JobSpec::new(EfficientSu2::new(3, 1), op(2, &[(1.0, "ZZ")]), opts());
    assert!(matches!(
        server.submit(wrong_register),
        Err(ServeError::QubitMismatch { what: "hamiltonian", ansatz: 3, found: 2 })
    ));
    let mut bad_seed = spec(1.0);
    bad_seed.seeds.push(vec![7; 12]);
    assert!(matches!(server.submit(bad_seed), Err(ServeError::BadSeed { index: 0, .. })));
    // Fill the queue with slow jobs, then hit the capacity wall.
    let mut slow = spec(1.0);
    slow.opts.iterations = 400;
    slow.opts.patience = usize::MAX;
    let a = server.submit(slow.clone()).unwrap();
    let mut slow2 = slow.clone();
    slow2.opts.seed = 7;
    let b = server.submit(slow2).unwrap();
    let overflow = server.submit(spec(1.3));
    assert_eq!(overflow.unwrap_err(), ServeError::QueueFull { capacity: 2 });
    // Unknown ids are structured errors everywhere.
    let bogus = cafqa_serve::JobId(9999);
    assert!(matches!(server.status(bogus), Err(ServeError::UnknownJob(_))));
    assert!(matches!(server.wait(bogus), Err(ServeError::UnknownJob(_))));
    assert!(matches!(server.cancel(bogus), Err(ServeError::UnknownJob(_))));
    server.cancel(a).unwrap();
    server.cancel(b).unwrap();
    let _ = server.wait(a);
    let _ = server.wait(b);
    // Draining frees capacity again.
    let ok = server.submit(spec(1.3)).unwrap();
    server.wait(ok).unwrap();
    // After shutdown, submissions reject with ShuttingDown.
    server.shutdown();
    assert!(matches!(server.submit(spec(1.4)), Err(ServeError::ShuttingDown)));
    let stats = server.stats();
    assert_eq!(stats.rejected, 4, "two malformed + one overflow + one post-shutdown");
}

#[test]
fn cached_hits_count_against_capacity_never() {
    // A full queue still answers exact hits from the cache.
    let engine = ExecEngine::serial();
    let serve_opts = ServeOptions { capacity: 1, warm_start: false, ..Default::default() };
    let mut server = CafqaServer::start(engine, serve_opts);
    let done = server.wait(server.submit(spec(1.0)).unwrap()).unwrap();
    let mut slow = spec(1.1);
    slow.opts.iterations = 400;
    slow.opts.patience = usize::MAX;
    let blocker = server.submit(slow).unwrap();
    assert!(matches!(server.submit(spec(1.2)), Err(ServeError::QueueFull { .. })));
    let hit = server.wait(server.submit(spec(1.0)).unwrap()).unwrap();
    assert_eq!(hit.disposition, Disposition::CacheHit);
    assert_results_bitwise(&hit.result, &done.result, "cache hit under full queue");
    server.cancel(blocker).unwrap();
    let _ = server.wait(blocker);
    server.shutdown();
}

#[test]
fn ising_routed_jobs_serve_without_slicing() {
    // An Ising-class instance takes the fast path inside the runner; the
    // server completes it in one slice with all contracts intact.
    let ham = op(3, &[(-1.0, "ZZI"), (-1.0, "IZZ"), (0.5, "ZII")]);
    let ansatz = EfficientSu2::new(3, 1);
    let serial = ExecEngine::serial();
    let reference = run_cafqa_on(&serial, &ansatz, &ham, Vec::new(), &[], &CafqaOptions::quick());
    let serve_opts = ServeOptions { slice_batches: 1, warm_start: false, ..Default::default() };
    let mut server = CafqaServer::start(ExecEngine::new(2), serve_opts);
    let outcome = server
        .wait(server.submit(JobSpec::new(ansatz, ham, CafqaOptions::quick())).unwrap())
        .unwrap();
    assert_results_bitwise(&outcome.result, &reference, "ising-routed serve");
    assert_eq!(server.status(outcome.id).unwrap(), JobStatus::Completed);
    server.shutdown();
}
