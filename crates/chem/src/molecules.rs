//! The paper's molecule catalog (Table 1) plus the documented surrogates.
//!
//! Each entry supplies geometry as a function of bond length, the
//! equilibrium bond length, the evaluated bond-length range, and the
//! active-space rule that reproduces the paper's qubit counts.

use crate::basis::{AoKind, BasisSet};
use crate::geometry::{Element, Molecule};
use crate::scf::ScfResult;

/// The benchmark systems of the paper's Table 1.
///
/// `H2S1Surrogate` (an H10 ring) and `Cr2Surrogate` (an H18 chain) stand
/// in for the paper's H2-S1 Hamiltonian file and Cr2; they match the
/// original 18- and 34-qubit register sizes exactly (see DESIGN.md §4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MoleculeKind {
    /// Hydrogen dimer (2 qubits).
    H2,
    /// Lithium hydride (4 qubits after π-virtual removal + core freeze).
    LiH,
    /// Water (12 qubits).
    H2O,
    /// Linear H6 chain (10 qubits).
    H6,
    /// Nitrogen dimer (12 qubits).
    N2,
    /// Sodium hydride (12 qubits).
    NaH,
    /// Linear BeH2 (12 qubits).
    BeH2,
    /// H10 ring, the 18-qubit H2-S1 surrogate.
    H2S1Surrogate,
    /// H18 chain, the 34-qubit Cr2 surrogate.
    Cr2Surrogate,
}

/// All catalog entries in paper order.
pub const ALL_MOLECULES: [MoleculeKind; 9] = [
    MoleculeKind::H2,
    MoleculeKind::LiH,
    MoleculeKind::H2O,
    MoleculeKind::H6,
    MoleculeKind::N2,
    MoleculeKind::NaH,
    MoleculeKind::BeH2,
    MoleculeKind::H2S1Surrogate,
    MoleculeKind::Cr2Surrogate,
];

impl MoleculeKind {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            MoleculeKind::H2 => "H2",
            MoleculeKind::LiH => "LiH",
            MoleculeKind::H2O => "H2O",
            MoleculeKind::H6 => "H6",
            MoleculeKind::N2 => "N2",
            MoleculeKind::NaH => "NaH",
            MoleculeKind::BeH2 => "BeH2",
            MoleculeKind::H2S1Surrogate => "H2-S1*",
            MoleculeKind::Cr2Surrogate => "Cr2*",
        }
    }

    /// Equilibrium bond length in Ångström (paper Table 1; surrogates use
    /// the hydrogen-chain equilibria).
    pub fn equilibrium_bond(self) -> f64 {
        match self {
            MoleculeKind::H2 => 0.74,
            MoleculeKind::LiH => 1.6,
            MoleculeKind::H2O => 1.0,
            MoleculeKind::H6 => 0.9,
            MoleculeKind::N2 => 1.09,
            MoleculeKind::NaH => 1.9,
            MoleculeKind::BeH2 => 1.32,
            MoleculeKind::H2S1Surrogate => 0.9,
            MoleculeKind::Cr2Surrogate => 0.95,
        }
    }

    /// The bond-length sweep used in the dissociation figures, as
    /// multiples of the equilibrium value (paper Table 1 ranges are
    /// 0.5×–4× for most molecules, 0.5×–3× for LiH).
    pub fn bond_sweep(self) -> Vec<f64> {
        let eq = self.equilibrium_bond();
        let multipliers: &[f64] = match self {
            MoleculeKind::LiH => &[0.5, 0.75, 1.0, 1.5, 2.0, 2.5, 3.0],
            MoleculeKind::Cr2Surrogate => &[0.75, 1.0, 1.5, 2.0, 3.0, 4.0],
            _ => &[0.5, 0.75, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0],
        };
        multipliers.iter().map(|m| m * eq).collect()
    }

    /// Geometry at a given bond length (Å). For chains/rings the bond
    /// length is the nearest-neighbour spacing; for H2O both O–H bonds
    /// stretch symmetrically at the fixed equilibrium angle.
    pub fn geometry(self, bond: f64) -> Molecule {
        match self {
            MoleculeKind::H2 => Molecule::diatomic(Element::H, Element::H, bond),
            MoleculeKind::LiH => Molecule::diatomic(Element::Li, Element::H, bond),
            MoleculeKind::N2 => Molecule::diatomic(Element::N, Element::N, bond),
            MoleculeKind::NaH => Molecule::diatomic(Element::Na, Element::H, bond),
            MoleculeKind::H2O => {
                // Bond angle 104.45°, bisector along +z.
                let half = (104.45f64 / 2.0).to_radians();
                Molecule::from_angstrom(&[
                    (Element::O, [0.0, 0.0, 0.0]),
                    (Element::H, [0.0, bond * half.sin(), bond * half.cos()]),
                    (Element::H, [0.0, -bond * half.sin(), bond * half.cos()]),
                ])
            }
            MoleculeKind::BeH2 => Molecule::from_angstrom(&[
                (Element::H, [0.0, 0.0, -bond]),
                (Element::Be, [0.0, 0.0, 0.0]),
                (Element::H, [0.0, 0.0, bond]),
            ]),
            MoleculeKind::H6 => hydrogen_chain(6, bond),
            MoleculeKind::Cr2Surrogate => hydrogen_chain(18, bond),
            MoleculeKind::H2S1Surrogate => hydrogen_ring(10, bond),
        }
    }

    /// The paper's Table 1 "(total, used)" orbital counts.
    pub fn orbital_counts(self) -> (usize, usize) {
        match self {
            MoleculeKind::H2 => (2, 2),
            MoleculeKind::LiH => (6, 3),
            MoleculeKind::H2O => (7, 7),
            MoleculeKind::H6 => (6, 6),
            MoleculeKind::N2 => (10, 7),
            MoleculeKind::NaH => (10, 7),
            MoleculeKind::BeH2 => (7, 7),
            MoleculeKind::H2S1Surrogate => (10, 10),
            MoleculeKind::Cr2Surrogate => (18, 18),
        }
    }

    /// Qubits after parity mapping + two-qubit reduction.
    pub fn num_qubits(self) -> usize {
        2 * self.orbital_counts().1 - 2
    }

    /// The active-space rule: `(frozen, dropped_virtuals)` as counts, with
    /// π-virtual detection handled separately for LiH.
    pub fn frozen_core_count(self) -> usize {
        match self {
            MoleculeKind::LiH => 1, // Li 1s
            MoleculeKind::N2 => 2,  // 2 × N 1s
            MoleculeKind::NaH => 2, // Na 1s, 2s
            _ => 0,
        }
    }
}

/// A linear hydrogen chain along z with uniform spacing (Å).
pub fn hydrogen_chain(n: usize, spacing: f64) -> Molecule {
    let atoms: Vec<(Element, [f64; 3])> =
        (0..n).map(|k| (Element::H, [0.0, 0.0, k as f64 * spacing])).collect();
    Molecule::from_angstrom(&atoms)
}

/// A planar hydrogen ring with uniform nearest-neighbour spacing (Å).
pub fn hydrogen_ring(n: usize, spacing: f64) -> Molecule {
    let radius = spacing / (2.0 * (std::f64::consts::PI / n as f64).sin());
    let atoms: Vec<(Element, [f64; 3])> = (0..n)
        .map(|k| {
            let theta = 2.0 * std::f64::consts::PI * k as f64 / n as f64;
            (Element::H, [radius * theta.cos(), radius * theta.sin(), 0.0])
        })
        .collect();
    Molecule::from_angstrom(&atoms)
}

/// Selects the active MO list for a molecule given its SCF solution.
///
/// Implements the Table 1 rules: freeze the lowest `frozen_core_count`
/// MOs; for LiH additionally drop the two π virtuals (MOs supported purely
/// on Li 2px/2py, which cannot mix along the bond axis); for N2/NaH drop
/// the highest virtual to reach 7 used orbitals.
pub fn select_active_space(
    kind: MoleculeKind,
    basis: &BasisSet,
    scf: &ScfResult,
) -> crate::active_space::ActiveSpace {
    let n = basis.len();
    let nf = kind.frozen_core_count();
    let frozen: Vec<usize> = (0..nf).collect();
    let mut active: Vec<usize> = (nf..n).collect();
    match kind {
        MoleculeKind::LiH => {
            // Drop MOs with > 90% weight on px/py AOs (π symmetry).
            active.retain(|&mo| {
                let mut pi_weight = 0.0;
                let mut total = 0.0;
                for ao in 0..n {
                    let w = scf.coefficients[(ao, mo)].powi(2);
                    total += w;
                    if matches!(basis.kinds[ao], AoKind::P(0) | AoKind::P(1)) {
                        pi_weight += w;
                    }
                }
                pi_weight / total < 0.9
            });
        }
        MoleculeKind::N2 => {
            // Drop the two highest virtuals plus... the paper uses 7 of 10
            // with 2 frozen, so exactly one dropped virtual.
            active.truncate(kind.orbital_counts().1);
        }
        MoleculeKind::NaH => {
            active.truncate(kind.orbital_counts().1);
        }
        _ => {}
    }
    crate::active_space::ActiveSpace { frozen, active }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qubit_counts_match_paper_table1() {
        assert_eq!(MoleculeKind::H2.num_qubits(), 2);
        assert_eq!(MoleculeKind::LiH.num_qubits(), 4);
        assert_eq!(MoleculeKind::H2O.num_qubits(), 12);
        assert_eq!(MoleculeKind::H6.num_qubits(), 10);
        assert_eq!(MoleculeKind::N2.num_qubits(), 12);
        assert_eq!(MoleculeKind::NaH.num_qubits(), 12);
        assert_eq!(MoleculeKind::BeH2.num_qubits(), 12);
        assert_eq!(MoleculeKind::H2S1Surrogate.num_qubits(), 18);
        assert_eq!(MoleculeKind::Cr2Surrogate.num_qubits(), 34);
    }

    #[test]
    fn sweep_ranges_match_table1() {
        let h2 = MoleculeKind::H2.bond_sweep();
        assert!((h2.first().unwrap() - 0.37).abs() < 1e-12);
        assert!((h2.last().unwrap() - 2.96).abs() < 1e-12);
        let lih = MoleculeKind::LiH.bond_sweep();
        assert!((lih.first().unwrap() - 0.8).abs() < 1e-12);
        assert!((lih.last().unwrap() - 4.8).abs() < 1e-12);
    }

    #[test]
    fn chain_and_ring_geometry() {
        let chain = hydrogen_chain(6, 0.9);
        assert_eq!(chain.atoms.len(), 6);
        assert_eq!(chain.num_electrons(), 6);
        let ring = hydrogen_ring(10, 0.9);
        assert_eq!(ring.atoms.len(), 10);
        // Nearest-neighbour distance equals the requested spacing.
        let d01 = crate::geometry::dist(ring.atoms[0].position, ring.atoms[1].position)
            / crate::geometry::BOHR_PER_ANGSTROM;
        assert!((d01 - 0.9).abs() < 1e-9, "spacing {d01}");
    }

    #[test]
    fn water_geometry_angle() {
        let m = MoleculeKind::H2O.geometry(1.0);
        let o = m.atoms[0].position;
        let h1 = m.atoms[1].position;
        let h2 = m.atoms[2].position;
        let v1: Vec<f64> = (0..3).map(|i| h1[i] - o[i]).collect();
        let v2: Vec<f64> = (0..3).map(|i| h2[i] - o[i]).collect();
        let dot: f64 = v1.iter().zip(&v2).map(|(a, b)| a * b).sum();
        let n1: f64 = v1.iter().map(|x| x * x).sum::<f64>().sqrt();
        let n2: f64 = v2.iter().map(|x| x * x).sum::<f64>().sqrt();
        let angle = (dot / (n1 * n2)).acos().to_degrees();
        assert!((angle - 104.45).abs() < 1e-6, "angle {angle}");
    }
}
