//! Self-consistent field: restricted (RHF) and unrestricted (UHF)
//! Hartree-Fock with DIIS acceleration, damping, and level shifting.
//!
//! RHF supplies the paper's state-of-the-art baseline initialization and
//! the molecular orbitals from which every Hamiltonian is built; UHF
//! supplies the spin-sector-optimized Hamiltonians of Fig. 10 (H2O
//! triplet) and Fig. 11 (H6 "opt.").

use std::fmt;

use cafqa_linalg::{LinalgError, Matrix};

use crate::integrals::AoIntegrals;

/// Options controlling the SCF loop.
#[derive(Debug, Clone)]
pub struct ScfOptions {
    /// Maximum number of iterations.
    pub max_iterations: usize,
    /// Energy convergence threshold (Hartree).
    pub energy_tol: f64,
    /// DIIS error-norm convergence threshold.
    pub error_tol: f64,
    /// Maximum DIIS history length (0 disables DIIS).
    pub diis_depth: usize,
    /// Density damping factor in `[0, 1)`; `0` disables damping.
    pub damping: f64,
    /// Level shift added to virtual orbitals (Hartree); helps stretched
    /// geometries converge, mirroring standard quantum-chemistry practice.
    pub level_shift: f64,
    /// HOMO-LUMO α-orbital mixing angle for UHF symmetry breaking.
    pub guess_mix: f64,
}

impl Default for ScfOptions {
    fn default() -> Self {
        ScfOptions {
            max_iterations: 300,
            energy_tol: 1e-10,
            error_tol: 1e-7,
            diis_depth: 8,
            damping: 0.0,
            level_shift: 0.0,
            guess_mix: 0.0,
        }
    }
}

impl ScfOptions {
    /// A sturdier preset for stretched geometries: damping plus a level
    /// shift, at the cost of a few more iterations.
    pub fn robust() -> Self {
        ScfOptions { damping: 0.35, level_shift: 0.25, max_iterations: 600, ..Self::default() }
    }
}

/// SCF failure modes.
#[derive(Debug, Clone)]
pub enum ScfError {
    /// The loop hit `max_iterations`; the best-effort result is attached
    /// (the paper hit the same with Psi4 at stretched H2O geometries).
    NotConverged(Box<ScfResult>),
    /// A linear-algebra failure (singular overlap, eigensolver).
    Linalg(LinalgError),
    /// Electron counts incompatible with the basis size.
    BadElectronCount {
        /// Requested (α, β) electrons.
        requested: (usize, usize),
        /// Number of spatial orbitals available.
        orbitals: usize,
    },
}

impl fmt::Display for ScfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScfError::NotConverged(r) => {
                write!(f, "scf did not converge (last energy {:.8} Ha)", r.energy)
            }
            ScfError::Linalg(e) => write!(f, "scf linear algebra failure: {e}"),
            ScfError::BadElectronCount { requested, orbitals } => write!(
                f,
                "cannot place {}α/{}β electrons in {orbitals} orbitals",
                requested.0, requested.1
            ),
        }
    }
}

impl std::error::Error for ScfError {}

impl From<LinalgError> for ScfError {
    fn from(e: LinalgError) -> Self {
        ScfError::Linalg(e)
    }
}

/// A converged (or best-effort) SCF solution.
#[derive(Debug, Clone)]
pub struct ScfResult {
    /// Total energy including nuclear repulsion (Hartree).
    pub energy: f64,
    /// α molecular-orbital coefficients (columns are MOs).
    pub coefficients: Matrix,
    /// α orbital energies, ascending.
    pub orbital_energies: Vec<f64>,
    /// β coefficients (`None` for RHF, where β = α).
    pub coefficients_beta: Option<Matrix>,
    /// β orbital energies (`None` for RHF).
    pub orbital_energies_beta: Option<Vec<f64>>,
    /// Number of α electrons.
    pub n_alpha: usize,
    /// Number of β electrons.
    pub n_beta: usize,
    /// Whether the convergence thresholds were met.
    pub converged: bool,
    /// Iterations used.
    pub iterations: usize,
}

fn density(c: &Matrix, nocc: usize, scale: f64) -> Matrix {
    let n = c.rows();
    Matrix::from_fn(n, n, |mu, nu| {
        let mut acc = 0.0;
        for i in 0..nocc {
            acc += c[(mu, i)] * c[(nu, i)];
        }
        scale * acc
    })
}

fn fock_2e(ints: &AoIntegrals, d_total: &Matrix, d_same: &Matrix, exchange_scale: f64) -> Matrix {
    let n = d_total.rows();
    Matrix::from_fn(n, n, |mu, nu| {
        let mut j = 0.0;
        let mut k = 0.0;
        for lam in 0..n {
            for sig in 0..n {
                j += d_total[(lam, sig)] * ints.eri.get(mu, nu, lam, sig);
                k += d_same[(lam, sig)] * ints.eri.get(mu, lam, sig, nu);
            }
        }
        j - exchange_scale * k
    })
}

struct Diis {
    depth: usize,
    focks: Vec<Vec<f64>>,
    errors: Vec<Vec<f64>>,
}

impl Diis {
    fn new(depth: usize) -> Self {
        Diis { depth, focks: Vec::new(), errors: Vec::new() }
    }

    fn push(&mut self, fock: &Matrix, error: &Matrix) {
        self.focks.push(fock.as_slice().to_vec());
        self.errors.push(error.as_slice().to_vec());
        if self.focks.len() > self.depth {
            self.focks.remove(0);
            self.errors.remove(0);
        }
    }

    /// Standard Pulay extrapolation; returns `None` until two vectors are
    /// stored or if the DIIS system is singular.
    fn extrapolate(&self, rows: usize) -> Option<Matrix> {
        let m = self.focks.len();
        if m < 2 {
            return None;
        }
        let dot = |a: &[f64], b: &[f64]| a.iter().zip(b).map(|(x, y)| x * y).sum::<f64>();
        let mut b = Matrix::zeros(m + 1, m + 1);
        for i in 0..m {
            for j in 0..m {
                b[(i, j)] = dot(&self.errors[i], &self.errors[j]);
            }
            b[(i, m)] = -1.0;
            b[(m, i)] = -1.0;
        }
        let mut rhs = vec![0.0; m + 1];
        rhs[m] = -1.0;
        let coeffs = b.solve(&rhs).ok()?;
        let mut fock = vec![0.0; self.focks[0].len()];
        for (i, f) in self.focks.iter().enumerate() {
            for (out, x) in fock.iter_mut().zip(f) {
                *out += coeffs[i] * x;
            }
        }
        Some(Matrix::from_fn(rows, rows, |i, j| fock[i * rows + j]))
    }
}

/// Diagonalizes a Fock matrix in the orthonormal basis, with optional
/// level shift applied to the span orthogonal to the occupied projector.
fn solve_fock(
    fock: &Matrix,
    x: &Matrix,
    occupied_projector: Option<&Matrix>,
    level_shift: f64,
) -> Result<(Matrix, Vec<f64>), LinalgError> {
    let mut fp = &(&x.transpose() * fock) * x;
    if level_shift > 0.0 {
        if let Some(p) = occupied_projector {
            let n = fp.rows();
            // F' + λ (I − P) raises virtuals by λ without moving occupieds.
            for i in 0..n {
                for j in 0..n {
                    let delta = if i == j { 1.0 } else { 0.0 };
                    fp[(i, j)] += level_shift * (delta - p[(i, j)]);
                }
            }
        }
    }
    let eig = fp.eigh()?;
    Ok((&x.clone() * &eig.vectors, eig.values))
}

/// Restricted Hartree-Fock for a closed-shell system.
///
/// # Errors
///
/// - [`ScfError::BadElectronCount`] for odd counts or too-small bases.
/// - [`ScfError::NotConverged`] past the iteration budget (with the
///   best-effort result attached).
///
/// # Examples
///
/// ```
/// use cafqa_chem::{compute_ao_integrals, rhf, BasisSet, Element, Molecule, ScfOptions};
///
/// let h2 = Molecule::diatomic(Element::H, Element::H, 0.735);
/// let basis = BasisSet::sto3g(&h2);
/// let ints = compute_ao_integrals(&h2, &basis);
/// let scf = rhf(&ints, 2, &ScfOptions::default()).unwrap();
/// assert!((scf.energy - (-1.117)).abs() < 5e-3); // literature STO-3G value
/// ```
pub fn rhf(
    ints: &AoIntegrals,
    n_electrons: usize,
    opts: &ScfOptions,
) -> Result<ScfResult, ScfError> {
    let n = ints.overlap.rows();
    if n_electrons % 2 != 0 || n_electrons / 2 > n {
        return Err(ScfError::BadElectronCount {
            requested: (n_electrons / 2, n_electrons - n_electrons / 2),
            orbitals: n,
        });
    }
    let nocc = n_electrons / 2;
    let x = ints.overlap.inv_sqrt_symmetric(1e-9)?;
    let (mut c, mut eps) = solve_fock(&ints.core_hamiltonian, &x, None, 0.0)?;
    let mut d = density(&c, nocc, 2.0);
    let mut diis = Diis::new(opts.diis_depth);
    let mut energy = f64::INFINITY;
    let mut converged = false;
    let mut iterations = 0;
    for it in 0..opts.max_iterations {
        iterations = it + 1;
        let g = fock_2e(ints, &d, &d, 0.5);
        let fock = &ints.core_hamiltonian + &g;
        let e_elec: f64 = (0..n)
            .flat_map(|mu| (0..n).map(move |nu| (mu, nu)))
            .map(|(mu, nu)| 0.5 * d[(mu, nu)] * (ints.core_hamiltonian[(mu, nu)] + fock[(mu, nu)]))
            .sum();
        let new_energy = e_elec + ints.nuclear_repulsion;
        // DIIS error in the orthonormal basis.
        let fds = &(&fock * &d) * &ints.overlap;
        let err = &(&x.transpose() * &(&fds - &fds.transpose())) * &x;
        let err_norm = err.frobenius_norm();
        if (new_energy - energy).abs() < opts.energy_tol && err_norm < opts.error_tol {
            energy = new_energy;
            converged = true;
            break;
        }
        energy = new_energy;
        diis.push(&fock, &err);
        let effective = diis.extrapolate(n).unwrap_or(fock);
        let proj = {
            let cp = &x.transpose() * &(&ints.overlap * &c);
            Some(density(&cp, nocc, 1.0))
        };
        let (c_new, eps_new) = solve_fock(&effective, &x, proj.as_ref(), opts.level_shift)?;
        c = c_new;
        eps = eps_new;
        let d_new = density(&c, nocc, 2.0);
        d = if opts.damping > 0.0 {
            &(&d_new * (1.0 - opts.damping)) + &(&d * opts.damping)
        } else {
            d_new
        };
    }
    let result = ScfResult {
        energy,
        coefficients: c,
        orbital_energies: eps,
        coefficients_beta: None,
        orbital_energies_beta: None,
        n_alpha: nocc,
        n_beta: nocc,
        converged,
        iterations,
    };
    if converged {
        Ok(result)
    } else {
        Err(ScfError::NotConverged(Box::new(result)))
    }
}

/// Unrestricted Hartree-Fock with independent α/β orbitals.
///
/// `guess_mix` in [`ScfOptions`] rotates the α HOMO/LUMO pair of the core
/// guess to break spin symmetry (needed for stretched singlets).
///
/// # Errors
///
/// Same failure modes as [`rhf`].
pub fn uhf(
    ints: &AoIntegrals,
    n_alpha: usize,
    n_beta: usize,
    opts: &ScfOptions,
) -> Result<ScfResult, ScfError> {
    let n = ints.overlap.rows();
    if n_alpha > n || n_beta > n {
        return Err(ScfError::BadElectronCount { requested: (n_alpha, n_beta), orbitals: n });
    }
    let x = ints.overlap.inv_sqrt_symmetric(1e-9)?;
    let (mut ca, mut ea) = solve_fock(&ints.core_hamiltonian, &x, None, 0.0)?;
    let (mut cb, mut eb) = (ca.clone(), ea.clone());
    if opts.guess_mix != 0.0 && n_alpha > 0 && n_alpha < n {
        // Rotate α HOMO/LUMO to break symmetry.
        let (h, l) = (n_alpha - 1, n_alpha);
        let (cos, sin) = (opts.guess_mix.cos(), opts.guess_mix.sin());
        for mu in 0..n {
            let vh = ca[(mu, h)];
            let vl = ca[(mu, l)];
            ca[(mu, h)] = cos * vh + sin * vl;
            ca[(mu, l)] = -sin * vh + cos * vl;
        }
    }
    let mut da = density(&ca, n_alpha, 1.0);
    let mut db = density(&cb, n_beta, 1.0);
    let mut diis_a = Diis::new(opts.diis_depth);
    let mut diis_b = Diis::new(opts.diis_depth);
    let mut energy = f64::INFINITY;
    let mut converged = false;
    let mut iterations = 0;
    for it in 0..opts.max_iterations {
        iterations = it + 1;
        let d_total = &da + &db;
        let fa = &ints.core_hamiltonian + &fock_2e(ints, &d_total, &da, 1.0);
        let fb = &ints.core_hamiltonian + &fock_2e(ints, &d_total, &db, 1.0);
        let mut e_elec = 0.0;
        for mu in 0..n {
            for nu in 0..n {
                e_elec += 0.5
                    * (d_total[(mu, nu)] * ints.core_hamiltonian[(mu, nu)]
                        + da[(mu, nu)] * fa[(mu, nu)]
                        + db[(mu, nu)] * fb[(mu, nu)]);
            }
        }
        let new_energy = e_elec + ints.nuclear_repulsion;
        let err_of = |f: &Matrix, d: &Matrix| {
            let fds = &(f * d) * &ints.overlap;
            &(&x.transpose() * &(&fds - &fds.transpose())) * &x
        };
        let erra = err_of(&fa, &da);
        let errb = err_of(&fb, &db);
        let err_norm = (erra.frobenius_norm().powi(2) + errb.frobenius_norm().powi(2)).sqrt();
        if (new_energy - energy).abs() < opts.energy_tol && err_norm < opts.error_tol {
            energy = new_energy;
            converged = true;
            break;
        }
        energy = new_energy;
        diis_a.push(&fa, &erra);
        diis_b.push(&fb, &errb);
        let fa_eff = diis_a.extrapolate(n).unwrap_or(fa);
        let fb_eff = diis_b.extrapolate(n).unwrap_or(fb);
        let proj = |c: &Matrix, nocc: usize| {
            let cp = &x.transpose() * &(&ints.overlap * c);
            density(&cp, nocc, 1.0)
        };
        let pa = proj(&ca, n_alpha);
        let pb = proj(&cb, n_beta);
        let (ca_new, ea_new) = solve_fock(&fa_eff, &x, Some(&pa), opts.level_shift)?;
        let (cb_new, eb_new) = solve_fock(&fb_eff, &x, Some(&pb), opts.level_shift)?;
        ca = ca_new;
        ea = ea_new;
        cb = cb_new;
        eb = eb_new;
        let da_new = density(&ca, n_alpha, 1.0);
        let db_new = density(&cb, n_beta, 1.0);
        if opts.damping > 0.0 {
            da = &(&da_new * (1.0 - opts.damping)) + &(&da * opts.damping);
            db = &(&db_new * (1.0 - opts.damping)) + &(&db * opts.damping);
        } else {
            da = da_new;
            db = db_new;
        }
    }
    let result = ScfResult {
        energy,
        coefficients: ca,
        orbital_energies: ea,
        coefficients_beta: Some(cb),
        orbital_energies_beta: Some(eb),
        n_alpha,
        n_beta,
        converged,
        iterations,
    };
    if converged {
        Ok(result)
    } else {
        Err(ScfError::NotConverged(Box::new(result)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basis::BasisSet;
    use crate::geometry::{Element, Molecule, BOHR_PER_ANGSTROM};
    use crate::integrals::compute_ao_integrals;

    fn run_rhf(m: &Molecule) -> ScfResult {
        let b = BasisSet::sto3g(m);
        let ints = compute_ao_integrals(m, &b);
        rhf(&ints, m.num_electrons(), &ScfOptions::default()).unwrap()
    }

    #[test]
    fn h2_sto3g_energy_matches_literature() {
        // Szabo–Ostlund: E(RHF/STO-3G, R = 1.4 a₀) = −1.1167 Ha.
        let m = Molecule::diatomic(Element::H, Element::H, 1.4 / BOHR_PER_ANGSTROM);
        let r = run_rhf(&m);
        assert!(r.converged);
        assert!((r.energy + 1.1167).abs() < 2e-3, "E = {}", r.energy);
    }

    #[test]
    fn water_sto3g_energy_matches_literature() {
        // Literature RHF/STO-3G for H2O near equilibrium ≈ −74.96 Ha.
        let m = Molecule::from_angstrom(&[
            (Element::O, [0.0, 0.0, 0.0]),
            (Element::H, [0.0, 0.7586, 0.5043]),
            (Element::H, [0.0, -0.7586, 0.5043]),
        ]);
        let r = run_rhf(&m);
        assert!(r.converged);
        assert!((r.energy + 74.96).abs() < 0.05, "E = {}", r.energy);
    }

    #[test]
    fn lih_sto3g_energy_matches_literature() {
        // Literature RHF/STO-3G for LiH near equilibrium ≈ −7.86 Ha.
        let m = Molecule::diatomic(Element::Li, Element::H, 1.6);
        let r = run_rhf(&m);
        assert!(r.converged);
        assert!((r.energy + 7.86).abs() < 0.02, "E = {}", r.energy);
    }

    #[test]
    fn uhf_equals_rhf_for_closed_shell_equilibrium() {
        let m = Molecule::diatomic(Element::H, Element::H, 0.735);
        let b = BasisSet::sto3g(&m);
        let ints = compute_ao_integrals(&m, &b);
        let r = rhf(&ints, 2, &ScfOptions::default()).unwrap();
        let u = uhf(&ints, 1, 1, &ScfOptions::default()).unwrap();
        assert!((r.energy - u.energy).abs() < 1e-8);
    }

    #[test]
    fn broken_symmetry_uhf_below_rhf_at_stretch() {
        // At 3 Å the UHF solution dissociates correctly and drops below RHF.
        let m = Molecule::diatomic(Element::H, Element::H, 3.0);
        let b = BasisSet::sto3g(&m);
        let ints = compute_ao_integrals(&m, &b);
        let r = rhf(&ints, 2, &ScfOptions::default()).unwrap();
        let opts = ScfOptions { guess_mix: 0.4, ..ScfOptions::default() };
        let u = uhf(&ints, 1, 1, &opts).unwrap();
        assert!(u.energy < r.energy - 0.05, "UHF {} vs RHF {}", u.energy, r.energy);
    }

    #[test]
    fn triplet_uhf_runs() {
        let m = Molecule::from_angstrom(&[
            (Element::O, [0.0, 0.0, 0.0]),
            (Element::H, [0.0, 2.4, 1.6]),
            (Element::H, [0.0, -2.4, 1.6]),
        ]);
        let b = BasisSet::sto3g(&m);
        let ints = compute_ao_integrals(&m, &b);
        let u = uhf(&ints, 6, 4, &ScfOptions::robust());
        let energy = match u {
            Ok(r) => r.energy,
            Err(ScfError::NotConverged(r)) => r.energy,
            Err(e) => panic!("{e}"),
        };
        assert!(energy < -73.0 && energy > -76.0, "E = {energy}");
    }

    #[test]
    fn odd_electron_rhf_rejected() {
        let m = Molecule::diatomic(Element::H, Element::H, 0.735).with_charge(1);
        let b = BasisSet::sto3g(&m);
        let ints = compute_ao_integrals(&m, &b);
        assert!(matches!(
            rhf(&ints, m.num_electrons(), &ScfOptions::default()),
            Err(ScfError::BadElectronCount { .. })
        ));
    }

    #[test]
    fn orbital_energies_sorted() {
        let m = Molecule::diatomic(Element::Li, Element::H, 1.6);
        let r = run_rhf(&m);
        assert!(r.orbital_energies.windows(2).all(|w| w[0] <= w[1] + 1e-12));
    }
}
