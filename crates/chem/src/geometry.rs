//! Molecular geometries in atomic units.

use serde::{Deserialize, Serialize};

/// Bohr per Ångström (CODATA).
pub const BOHR_PER_ANGSTROM: f64 = 1.889_726_124_626_2;

/// Chemical elements supported by the built-in STO-3G basis data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Element {
    /// Hydrogen (Z = 1).
    H,
    /// Lithium (Z = 3).
    Li,
    /// Beryllium (Z = 4).
    Be,
    /// Nitrogen (Z = 7).
    N,
    /// Oxygen (Z = 8).
    O,
    /// Sodium (Z = 11).
    Na,
}

impl Element {
    /// Nuclear charge.
    pub fn atomic_number(self) -> u32 {
        match self {
            Element::H => 1,
            Element::Li => 3,
            Element::Be => 4,
            Element::N => 7,
            Element::O => 8,
            Element::Na => 11,
        }
    }

    /// Element symbol.
    pub fn symbol(self) -> &'static str {
        match self {
            Element::H => "H",
            Element::Li => "Li",
            Element::Be => "Be",
            Element::N => "N",
            Element::O => "O",
            Element::Na => "Na",
        }
    }
}

/// An atom at a position given in bohr.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Atom {
    /// The element.
    pub element: Element,
    /// Position in bohr.
    pub position: [f64; 3],
}

/// A molecular geometry plus total charge.
///
/// # Examples
///
/// ```
/// use cafqa_chem::{Element, Molecule};
///
/// let h2 = Molecule::diatomic(Element::H, Element::H, 0.74);
/// assert_eq!(h2.num_electrons(), 2);
/// assert!(h2.nuclear_repulsion() > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Molecule {
    /// The atoms.
    pub atoms: Vec<Atom>,
    /// Net charge (+1 for a monocation).
    pub charge: i32,
}

impl Molecule {
    /// Builds a molecule from `(element, [x, y, z])` with positions in
    /// **Ångström**, neutral charge.
    pub fn from_angstrom(atoms: &[(Element, [f64; 3])]) -> Self {
        Molecule {
            atoms: atoms
                .iter()
                .map(|&(element, pos)| Atom {
                    element,
                    position: [
                        pos[0] * BOHR_PER_ANGSTROM,
                        pos[1] * BOHR_PER_ANGSTROM,
                        pos[2] * BOHR_PER_ANGSTROM,
                    ],
                })
                .collect(),
            charge: 0,
        }
    }

    /// A diatomic along the z-axis with bond length in Ångström.
    pub fn diatomic(a: Element, b: Element, bond_angstrom: f64) -> Self {
        Molecule::from_angstrom(&[(a, [0.0, 0.0, 0.0]), (b, [0.0, 0.0, bond_angstrom])])
    }

    /// Returns a copy with the given net charge.
    pub fn with_charge(mut self, charge: i32) -> Self {
        self.charge = charge;
        self
    }

    /// Total electron count after accounting for the charge.
    ///
    /// # Panics
    ///
    /// Panics if the charge strips more electrons than the molecule has.
    pub fn num_electrons(&self) -> usize {
        let z: i64 = self.atoms.iter().map(|a| a.element.atomic_number() as i64).sum();
        let n = z - self.charge as i64;
        assert!(n >= 0, "charge exceeds total nuclear charge");
        n as usize
    }

    /// Nuclear-nuclear repulsion energy in Hartree.
    pub fn nuclear_repulsion(&self) -> f64 {
        let mut e = 0.0;
        for i in 0..self.atoms.len() {
            for j in (i + 1)..self.atoms.len() {
                let zi = self.atoms[i].element.atomic_number() as f64;
                let zj = self.atoms[j].element.atomic_number() as f64;
                e += zi * zj / dist(self.atoms[i].position, self.atoms[j].position);
            }
        }
        e
    }
}

/// Euclidean distance between two points.
pub fn dist(a: [f64; 3], b: [f64; 3]) -> f64 {
    let d = [a[0] - b[0], a[1] - b[1], a[2] - b[2]];
    (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn h2_nuclear_repulsion_at_szabo_geometry() {
        // Szabo–Ostlund reference: R = 1.4 bohr ⇒ E_nn = 1/1.4 ≈ 0.7143.
        let r_angstrom = 1.4 / BOHR_PER_ANGSTROM;
        let h2 = Molecule::diatomic(Element::H, Element::H, r_angstrom);
        assert!((h2.nuclear_repulsion() - 1.0 / 1.4).abs() < 1e-12);
    }

    #[test]
    fn cation_electron_count() {
        let h2p = Molecule::diatomic(Element::H, Element::H, 0.74).with_charge(1);
        assert_eq!(h2p.num_electrons(), 1);
    }

    #[test]
    fn water_electron_count() {
        let h2o = Molecule::from_angstrom(&[
            (Element::O, [0.0, 0.0, 0.0]),
            (Element::H, [0.0, 0.76, 0.59]),
            (Element::H, [0.0, -0.76, 0.59]),
        ]);
        assert_eq!(h2o.num_electrons(), 10);
    }

    #[test]
    fn atomic_numbers() {
        assert_eq!(Element::Na.atomic_number(), 11);
        assert_eq!(Element::N.symbol(), "N");
    }
}
