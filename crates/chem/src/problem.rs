//! End-to-end Hamiltonian construction: geometry → integrals → SCF →
//! active space → parity-mapped, two-qubit-reduced qubit Hamiltonian.

use cafqa_linalg::lanczos::{self, LanczosOptions};
use cafqa_pauli::PauliOp;

use crate::active_space::{active_space_integrals, ActiveSpace, SpinIntegrals};
use crate::basis::BasisSet;
use crate::fci::{fci_ground_state, FciError};
use crate::geometry::Molecule;
use crate::integrals::{compute_ao_integrals, AoIntegrals};
use crate::mapping::{
    hf_bitstring, number_operator, qubit_hamiltonian, s_squared_operator, sz_operator,
    taper_two_qubits, Mapping,
};
use crate::molecules::{select_active_space, MoleculeKind};
use crate::scf::{rhf, uhf, ScfError, ScfOptions, ScfResult};

/// Chemistry pipeline failures.
#[derive(Debug)]
pub enum ChemError {
    /// SCF failed for a reason other than slow convergence.
    Scf(ScfError),
    /// FCI reference failed.
    Fci(FciError),
    /// The qubit register would exceed the 64-qubit workspace limit.
    TooManyQubits {
        /// Requested register width.
        qubits: usize,
    },
    /// The geometry is malformed (non-finite or non-positive bond
    /// length, coincident atoms, no atoms, or a charge stripping more
    /// electrons than the molecule has). Surfaced as a structured error
    /// so server-called paths never hit the downstream asserts.
    BadGeometry {
        /// What is wrong with the geometry.
        reason: String,
    },
}

impl std::fmt::Display for ChemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChemError::Scf(e) => write!(f, "scf failure: {e}"),
            ChemError::Fci(e) => write!(f, "fci failure: {e}"),
            ChemError::TooManyQubits { qubits } => {
                write!(f, "{qubits} qubits exceed the 64-qubit limit")
            }
            ChemError::BadGeometry { reason } => write!(f, "bad geometry: {reason}"),
        }
    }
}

impl std::error::Error for ChemError {}

/// Which SCF reference to build orbitals from.
#[derive(Debug, Clone)]
pub enum ScfKind {
    /// Closed-shell RHF (the paper's default).
    Rhf,
    /// UHF with explicit spin occupations and symmetry-breaking mix, for
    /// the spin-sector-optimized Hamiltonians of Fig. 10/11.
    Uhf {
        /// α electron count.
        n_alpha: usize,
        /// β electron count.
        n_beta: usize,
        /// HOMO-LUMO guess mixing angle.
        guess_mix: f64,
    },
}

/// Reusable intermediate products of the chemistry pipeline; one pipeline
/// can mint [`MolecularProblem`]s for several `(n_alpha, n_beta)` sectors
/// (e.g. neutral H2 and the H2+ cation share orbitals, paper §7.1.1).
#[derive(Debug)]
pub struct ChemPipeline {
    /// The geometry.
    pub molecule: Molecule,
    /// The STO-3G basis.
    pub basis: BasisSet,
    /// AO integrals.
    pub integrals: AoIntegrals,
    /// The SCF solution (best effort if unconverged).
    pub scf: ScfResult,
    /// Whether SCF met its thresholds (the paper's Psi4 runs also fail at
    /// stretched geometries; failures are reported, not hidden).
    pub scf_converged: bool,
    /// Selected active space.
    pub active_space: ActiveSpace,
    /// Active-space integrals.
    pub spin_integrals: SpinIntegrals,
}

impl ChemPipeline {
    /// Runs geometry → integrals → SCF → active space for a catalog
    /// molecule at a bond length (Å).
    ///
    /// # Errors
    ///
    /// Returns [`ChemError::Scf`] on hard SCF failures; slow convergence
    /// is tolerated and reported through [`Self::scf_converged`].
    /// A non-finite or non-positive bond length is
    /// [`ChemError::BadGeometry`].
    pub fn build(kind: MoleculeKind, bond: f64, scf_kind: &ScfKind) -> Result<Self, ChemError> {
        if !bond.is_finite() || bond <= 0.0 {
            return Err(ChemError::BadGeometry {
                reason: format!("bond length {bond} Å is not a positive finite number"),
            });
        }
        let molecule = kind.geometry(bond);
        Self::from_molecule(molecule, Some(kind), scf_kind, &ScfOptions::default())
    }

    /// Same as [`Self::build`] with explicit SCF options.
    pub fn build_with_options(
        kind: MoleculeKind,
        bond: f64,
        scf_kind: &ScfKind,
        opts: &ScfOptions,
    ) -> Result<Self, ChemError> {
        if !bond.is_finite() || bond <= 0.0 {
            return Err(ChemError::BadGeometry {
                reason: format!("bond length {bond} Å is not a positive finite number"),
            });
        }
        let molecule = kind.geometry(bond);
        Self::from_molecule(molecule, Some(kind), scf_kind, opts)
    }

    /// Checks the structural invariants the downstream pipeline assumes
    /// (asserts on, or silently NaN-poisons without): at least one atom,
    /// finite positions, no coincident nuclei, and a charge that leaves
    /// a non-negative electron count.
    fn validate_geometry(molecule: &Molecule) -> Result<(), ChemError> {
        if molecule.atoms.is_empty() {
            return Err(ChemError::BadGeometry { reason: "no atoms".into() });
        }
        for (i, atom) in molecule.atoms.iter().enumerate() {
            if atom.position.iter().any(|c| !c.is_finite()) {
                return Err(ChemError::BadGeometry {
                    reason: format!("atom {i} has a non-finite coordinate"),
                });
            }
        }
        for i in 0..molecule.atoms.len() {
            for j in (i + 1)..molecule.atoms.len() {
                let d =
                    crate::geometry::dist(molecule.atoms[i].position, molecule.atoms[j].position);
                if d <= 0.0 {
                    return Err(ChemError::BadGeometry {
                        reason: format!("atoms {i} and {j} coincide"),
                    });
                }
            }
        }
        let z: i64 = molecule.atoms.iter().map(|a| a.element.atomic_number() as i64).sum();
        if z - (molecule.charge as i64) < 0 {
            return Err(ChemError::BadGeometry {
                reason: format!(
                    "charge {} strips more electrons than the {z} available",
                    molecule.charge
                ),
            });
        }
        Ok(())
    }

    /// Builds the pipeline for an arbitrary geometry (full active space
    /// unless a catalog `kind` supplies a rule). Malformed geometries
    /// reject with [`ChemError::BadGeometry`] before any numerics run.
    pub fn from_molecule(
        molecule: Molecule,
        kind: Option<MoleculeKind>,
        scf_kind: &ScfKind,
        opts: &ScfOptions,
    ) -> Result<Self, ChemError> {
        Self::validate_geometry(&molecule)?;
        let basis = BasisSet::sto3g(&molecule);
        let integrals = compute_ao_integrals(&molecule, &basis);
        let run = |options: &ScfOptions| match scf_kind {
            ScfKind::Rhf => rhf(&integrals, molecule.num_electrons(), options),
            ScfKind::Uhf { n_alpha, n_beta, guess_mix } => {
                let mut o = options.clone();
                o.guess_mix = *guess_mix;
                uhf(&integrals, *n_alpha, *n_beta, &o)
            }
        };
        let (scf, scf_converged) = match run(opts) {
            Ok(r) => (r, true),
            Err(ScfError::NotConverged(_)) => {
                // Retry with the robust preset, then accept best effort.
                match run(&ScfOptions::robust()) {
                    Ok(r) => (r, true),
                    Err(ScfError::NotConverged(r)) => (*r, false),
                    Err(e) => return Err(ChemError::Scf(e)),
                }
            }
            Err(e) => return Err(ChemError::Scf(e)),
        };
        let active_space = match kind {
            Some(k) => select_active_space(k, &basis, &scf),
            None => ActiveSpace::full(basis.len()),
        };
        let spin_integrals = active_space_integrals(&integrals, &scf, &active_space);
        Ok(ChemPipeline {
            molecule,
            basis,
            integrals,
            scf,
            scf_converged,
            active_space,
            spin_integrals,
        })
    }

    /// The default electron sector from the SCF occupations (active
    /// electrons per spin).
    pub fn default_sector(&self) -> (usize, usize) {
        (self.spin_integrals.n_alpha, self.spin_integrals.n_beta)
    }

    /// Builds the qubit-side problem for an `(n_alpha, n_beta)` sector.
    ///
    /// # Errors
    ///
    /// Fails if the register would exceed 64 qubits, or if `compute_exact`
    /// is set and the FCI reference fails (it is skipped silently when the
    /// determinant space is simply too large, matching the paper's Cr2
    /// treatment).
    pub fn problem(
        &self,
        n_alpha: usize,
        n_beta: usize,
        compute_exact: bool,
    ) -> Result<MolecularProblem, ChemError> {
        let nact = self.spin_integrals.n;
        let n_qubits = 2 * nact - 2;
        if 2 * nact > 64 {
            return Err(ChemError::TooManyQubits { qubits: 2 * nact });
        }
        let full = qubit_hamiltonian(&self.spin_integrals, Mapping::Parity);
        let hamiltonian = taper_two_qubits(&full, n_alpha, n_beta);
        let number_op = taper_two_qubits(&number_operator(nact, Mapping::Parity), n_alpha, n_beta);
        let sz_op = taper_two_qubits(&sz_operator(nact, Mapping::Parity), n_alpha, n_beta);
        let s_squared_op =
            taper_two_qubits(&s_squared_operator(nact, Mapping::Parity), n_alpha, n_beta);
        let hf_bits = hf_bitstring(Mapping::Parity, nact, n_alpha, n_beta, true);
        let hf_energy = hamiltonian.expectation_basis(hf_bits);
        let exact_energy = if compute_exact {
            match fci_ground_state(&self.spin_integrals, n_alpha, n_beta) {
                Ok(r) => Some(r.energy),
                Err(FciError::TooLarge { .. }) => None,
                Err(e) => return Err(ChemError::Fci(e)),
            }
        } else {
            None
        };
        Ok(MolecularProblem {
            n_qubits,
            hamiltonian,
            number_op,
            sz_op,
            s_squared_op,
            hf_bits,
            hf_energy,
            exact_energy,
            n_alpha,
            n_beta,
            scf_energy: self.scf.energy,
            scf_converged: self.scf_converged,
        })
    }
}

/// A complete qubit-side description of one molecular ground-state
/// estimation task — everything CAFQA needs.
#[derive(Debug, Clone)]
pub struct MolecularProblem {
    /// Register width (`2 · active orbitals − 2`).
    pub n_qubits: usize,
    /// The tapered qubit Hamiltonian.
    pub hamiltonian: PauliOp,
    /// The tapered total-number operator (for electron-count penalties).
    pub number_op: PauliOp,
    /// The tapered Sz operator (for spin penalties).
    pub sz_op: PauliOp,
    /// The tapered S² operator (for total-spin penalties).
    pub s_squared_op: PauliOp,
    /// The Hartree-Fock bitstring in the tapered parity basis.
    pub hf_bits: u64,
    /// `⟨HF|H|HF⟩` — equals the SCF total energy for RHF references.
    pub hf_energy: f64,
    /// FCI reference energy, when feasible.
    pub exact_energy: Option<f64>,
    /// α electrons in the sector.
    pub n_alpha: usize,
    /// β electrons in the sector.
    pub n_beta: usize,
    /// The SCF total energy.
    pub scf_energy: f64,
    /// Whether SCF converged.
    pub scf_converged: bool,
}

impl MolecularProblem {
    /// Total electrons in the sector.
    pub fn n_electrons(&self) -> usize {
        self.n_alpha + self.n_beta
    }

    /// Correlation energy `E_HF − E_exact` (positive), when exact is known.
    pub fn correlation_energy(&self) -> Option<f64> {
        self.exact_energy.map(|e| self.hf_energy - e)
    }
}

/// Exact ground energy of a qubit operator by Lanczos on the `2^n`-dim
/// computational basis (requires a real-matrix operator, which all
/// molecular Hamiltonians here are).
///
/// # Errors
///
/// Returns `None` if the operator is not real in the computational basis
/// or wider than 24 qubits.
pub fn qubit_ground_energy(op: &PauliOp) -> Option<f64> {
    let n = op.num_qubits();
    if n > 24 {
        return None;
    }
    let terms = op.real_basis_terms(1e-9)?;
    let dim = 1usize << n;
    let apply = move |x: &[f64], y: &mut [f64]| {
        for &(f, xm, zm) in &terms {
            for b in 0..dim {
                let xb = x[b];
                if xb == 0.0 {
                    continue;
                }
                let sign = if (zm & b as u64).count_ones() % 2 == 0 { f } else { -f };
                y[b ^ xm as usize] += sign * xb;
            }
        }
    };
    let op = (dim, apply);
    let opts = LanczosOptions {
        max_subspace: 70,
        max_restarts: 50,
        tolerance: 1e-8,
        ..Default::default()
    };
    lanczos::lowest_eigenpair(&op, &opts).ok().map(|p| p.value)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::BOHR_PER_ANGSTROM;

    fn h2_pipeline() -> ChemPipeline {
        ChemPipeline::build(MoleculeKind::H2, 1.4 / BOHR_PER_ANGSTROM, &ScfKind::Rhf).unwrap()
    }

    #[test]
    fn malformed_geometry_rejects_structurally_instead_of_panicking() {
        use crate::geometry::{Element, Molecule};
        // Non-positive / non-finite bond lengths.
        for bond in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let err = ChemPipeline::build(MoleculeKind::H2, bond, &ScfKind::Rhf).unwrap_err();
            assert!(matches!(err, ChemError::BadGeometry { .. }), "bond {bond}: {err}");
        }
        let reject = |m: Molecule| {
            let err = ChemPipeline::from_molecule(m, None, &ScfKind::Rhf, &ScfOptions::default())
                .unwrap_err();
            assert!(matches!(err, ChemError::BadGeometry { .. }), "{err}");
        };
        // Empty molecule, coincident atoms, non-finite coordinate, and a
        // charge stripping more electrons than exist — the path that
        // used to trip the `num_electrons` assert.
        reject(Molecule { atoms: Vec::new(), charge: 0 });
        reject(Molecule::from_angstrom(&[
            (Element::H, [0.0, 0.0, 0.0]),
            (Element::H, [0.0, 0.0, 0.0]),
        ]));
        reject(Molecule::from_angstrom(&[(Element::H, [0.0, 0.0, f64::NAN])]));
        reject(Molecule::diatomic(Element::H, Element::H, 0.74).with_charge(3));
        // A valid geometry still builds.
        assert!(ChemPipeline::from_molecule(
            Molecule::diatomic(Element::H, Element::H, 0.74),
            None,
            &ScfKind::Rhf,
            &ScfOptions::default(),
        )
        .is_ok());
    }

    #[test]
    fn h2_problem_matches_fci_and_hf() {
        let pipe = h2_pipeline();
        let (na, nb) = pipe.default_sector();
        let prob = pipe.problem(na, nb, true).unwrap();
        assert_eq!(prob.n_qubits, 2);
        // HF bitstring reproduces the SCF energy through the qubit H.
        assert!(
            (prob.hf_energy - prob.scf_energy).abs() < 1e-8,
            "{} vs {}",
            prob.hf_energy,
            prob.scf_energy
        );
        // Qubit ground state equals determinant FCI.
        let qubit_exact = qubit_ground_energy(&prob.hamiltonian).unwrap();
        let fci = prob.exact_energy.unwrap();
        assert!((qubit_exact - fci).abs() < 1e-7, "{qubit_exact} vs {fci}");
        // Literature: FCI/STO-3G at 1.4 a₀ ≈ −1.1373.
        assert!((fci + 1.1373).abs() < 2e-3);
    }

    #[test]
    fn jw_and_parity_agree_on_ground_energy() {
        let pipe = h2_pipeline();
        let jw = qubit_hamiltonian(&pipe.spin_integrals, Mapping::JordanWigner);
        let parity = qubit_hamiltonian(&pipe.spin_integrals, Mapping::Parity);
        let e_jw = qubit_ground_energy(&jw).unwrap();
        let e_parity = qubit_ground_energy(&parity).unwrap();
        assert!((e_jw - e_parity).abs() < 1e-8, "{e_jw} vs {e_parity}");
    }

    #[test]
    fn tapering_preserves_sector_ground_state() {
        let pipe = h2_pipeline();
        let prob = pipe.problem(1, 1, true).unwrap();
        let full = qubit_hamiltonian(&pipe.spin_integrals, Mapping::Parity);
        let tapered_min = qubit_ground_energy(&prob.hamiltonian).unwrap();
        let full_min = qubit_ground_energy(&full).unwrap();
        // The full Fock-space minimum is ≤ the sector minimum; for neutral
        // H2 they coincide.
        assert!((tapered_min - full_min).abs() < 1e-7);
    }

    #[test]
    fn cation_sector_from_shared_pipeline() {
        let pipe = h2_pipeline();
        let cation = pipe.problem(1, 0, true).unwrap();
        let neutral = pipe.problem(1, 1, true).unwrap();
        // H2+ lies above neutral H2 near equilibrium.
        assert!(cation.exact_energy.unwrap() > neutral.exact_energy.unwrap());
        // The tapered cation Hamiltonian's ground state matches its FCI.
        let qubit_exact = qubit_ground_energy(&cation.hamiltonian).unwrap();
        assert!((qubit_exact - cation.exact_energy.unwrap()).abs() < 1e-7);
    }

    #[test]
    fn lih_problem_shape_and_energies() {
        let pipe = ChemPipeline::build(MoleculeKind::LiH, 1.6, &ScfKind::Rhf).unwrap();
        assert_eq!(pipe.spin_integrals.n, 3, "LiH active orbitals");
        let (na, nb) = pipe.default_sector();
        assert_eq!((na, nb), (1, 1));
        let prob = pipe.problem(na, nb, true).unwrap();
        assert_eq!(prob.n_qubits, 4);
        assert!((prob.hf_energy - prob.scf_energy).abs() < 1e-8);
        let exact = prob.exact_energy.unwrap();
        assert!(exact < prob.hf_energy);
        let qubit_exact = qubit_ground_energy(&prob.hamiltonian).unwrap();
        assert!((qubit_exact - exact).abs() < 1e-7, "{qubit_exact} vs {exact}");
    }

    #[test]
    fn number_operator_counts_hf_electrons() {
        let pipe = h2_pipeline();
        let prob = pipe.problem(1, 1, false).unwrap();
        let n = prob.number_op.expectation_basis(prob.hf_bits);
        assert!((n - 2.0).abs() < 1e-10, "N = {n}");
        let sz = prob.sz_op.expectation_basis(prob.hf_bits);
        assert!(sz.abs() < 1e-10);
    }

    #[test]
    fn h6_problem_is_ten_qubits() {
        let pipe = ChemPipeline::build(MoleculeKind::H6, 0.9, &ScfKind::Rhf).unwrap();
        let (na, nb) = pipe.default_sector();
        let prob = pipe.problem(na, nb, true).unwrap();
        assert_eq!(prob.n_qubits, 10);
        assert!((prob.hf_energy - prob.scf_energy).abs() < 1e-7);
        assert!(prob.exact_energy.unwrap() < prob.hf_energy);
    }
}
