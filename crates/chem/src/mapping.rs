//! Second quantization and fermion-to-qubit encodings.
//!
//! Spin orbitals use **blocked ordering**: indices `0..n` are the α
//! orbitals, `n..2n` the β orbitals. The paper's Hamiltonians use the
//! parity mapping with two-qubit Z2 reduction (§6), which is what makes
//! the qubit counts of Table 1 come out to `2·orbitals − 2`; Jordan-Wigner
//! is provided as the cross-validation encoding.

use cafqa_linalg::Complex64;
use cafqa_pauli::{Pauli, PauliOp, PauliString};

use crate::active_space::{Spin, SpinIntegrals};

/// Fermion-to-qubit encoding choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mapping {
    /// Jordan–Wigner: occupation stored directly, Z-strings for parity.
    JordanWigner,
    /// Parity: running occupation parity stored, X-strings for updates.
    /// Supports the two-qubit symmetry reduction.
    Parity,
}

/// The annihilation operator `a_j` on `m` spin orbitals as a Pauli sum.
pub fn lowering_op(mapping: Mapping, m: usize, j: usize) -> PauliOp {
    assert!(j < m, "spin orbital index out of range");
    let half = Complex64::new(0.5, 0.0);
    let half_i = Complex64::new(0.0, 0.5);
    let mut op = PauliOp::zero(m);
    match mapping {
        Mapping::JordanWigner => {
            // a_j = (Π_{k<j} Z_k) (X_j + iY_j)/2, with |1⟩ = occupied.
            let mut zx = PauliString::identity(m);
            let mut zy = PauliString::identity(m);
            for k in 0..j {
                zx = zx.with_pauli(k, Pauli::Z);
                zy = zy.with_pauli(k, Pauli::Z);
            }
            zx = zx.with_pauli(j, Pauli::X);
            zy = zy.with_pauli(j, Pauli::Y);
            op.add_term(half, zx);
            op.add_term(half_i, zy);
        }
        Mapping::Parity => {
            // a_j = ½ (Z_{j−1} X_j + i Y_j) ⊗ X_{j+1..m−1}
            // (Seeley–Richard–Love 2012, with qubit j storing the parity
            // of occupations 0..=j).
            let mut x_term = PauliString::identity(m);
            let mut y_term = PauliString::identity(m);
            if j > 0 {
                x_term = x_term.with_pauli(j - 1, Pauli::Z);
            }
            x_term = x_term.with_pauli(j, Pauli::X);
            y_term = y_term.with_pauli(j, Pauli::Y);
            for k in (j + 1)..m {
                x_term = x_term.with_pauli(k, Pauli::X);
                y_term = y_term.with_pauli(k, Pauli::X);
            }
            op.add_term(half, x_term);
            op.add_term(half_i, y_term);
        }
    }
    op
}

/// The creation operator `a†_j` (Hermitian conjugate of [`lowering_op`]).
pub fn raising_op(mapping: Mapping, m: usize, j: usize) -> PauliOp {
    lowering_op(mapping, m, j).dagger()
}

/// Blocked spin-orbital index: α spatial `p` → `p`, β spatial `p` → `n+p`.
#[inline]
pub fn spin_orbital(n_spatial: usize, p: usize, spin: Spin) -> usize {
    match spin {
        Spin::Alpha => p,
        Spin::Beta => n_spatial + p,
    }
}

/// Builds the full (untapered) qubit Hamiltonian on `2n` qubits from
/// active-space integrals:
///
/// `H = E_core + Σ h^σ_pq a†_pσ a_qσ
///      + ½ Σ (pq|rs)^{στ} a†_pσ a†_rτ a_sτ a_qσ`.
pub fn qubit_hamiltonian(si: &SpinIntegrals, mapping: Mapping) -> PauliOp {
    let n = si.n;
    let m = 2 * n;
    let spins = [Spin::Alpha, Spin::Beta];
    // Cache ladder operators.
    let lower: Vec<PauliOp> = (0..m).map(|j| lowering_op(mapping, m, j)).collect();
    let raise: Vec<PauliOp> = (0..m).map(|j| raising_op(mapping, m, j)).collect();
    let mut h = PauliOp::zero(m);
    h.add_term(Complex64::from(si.core_energy), PauliString::identity(m));
    // One-body terms.
    for &sigma in &spins {
        for p in 0..n {
            for q in 0..n {
                let v = si.h(sigma, p, q);
                if v.abs() < 1e-12 {
                    continue;
                }
                let term = raise[spin_orbital(n, p, sigma)]
                    .mul_op(&lower[spin_orbital(n, q, sigma)])
                    .scaled(Complex64::from(v));
                for (ps, c) in term.iter() {
                    h.add_term(*c, *ps);
                }
            }
        }
    }
    // Two-body terms: accumulate in a scratch op per (p, q) pair to keep
    // the running simplification cheap.
    for &sigma in &spins {
        for &tau in &spins {
            for p in 0..n {
                for q in 0..n {
                    let ap = &raise[spin_orbital(n, p, sigma)];
                    let aq = &lower[spin_orbital(n, q, sigma)];
                    let mut chunk = PauliOp::zero(m);
                    let mut any = false;
                    for r in 0..n {
                        for s in 0..n {
                            let v = si.eri(sigma, tau, p, q, r, s);
                            if v.abs() < 1e-12 {
                                continue;
                            }
                            let (ri, sidx) = (spin_orbital(n, r, tau), spin_orbital(n, s, tau));
                            if ri == spin_orbital(n, p, sigma) || sidx == spin_orbital(n, q, sigma)
                            {
                                // a†_p a†_p = 0 and a_q a_q = 0: skip terms
                                // the algebra would cancel anyway.
                                continue;
                            }
                            // ½ a†_pσ a†_rτ a_sτ a_qσ.
                            let inner = raise[ri].mul_op(&lower[sidx]);
                            chunk = &chunk + &inner.scaled(Complex64::from(0.5 * v));
                            any = true;
                        }
                    }
                    if any {
                        let term = ap.mul_op(&chunk.pruned(1e-14)).mul_op(aq);
                        for (ps, c) in term.iter() {
                            h.add_term(*c, *ps);
                        }
                    }
                }
            }
        }
    }
    h.pruned(1e-10)
}

/// The total-number operator `N = Σ_j a†_j a_j` on `2n` qubits.
pub fn number_operator(n_spatial: usize, mapping: Mapping) -> PauliOp {
    let m = 2 * n_spatial;
    let mut op = PauliOp::zero(m);
    for j in 0..m {
        let term = raising_op(mapping, m, j).mul_op(&lowering_op(mapping, m, j));
        op = (&op + &term).pruned(1e-14);
    }
    op
}

/// The Sz operator `½ (N_α − N_β)` on `2n` qubits.
pub fn sz_operator(n_spatial: usize, mapping: Mapping) -> PauliOp {
    let m = 2 * n_spatial;
    let mut op = PauliOp::zero(m);
    for p in 0..n_spatial {
        for (spin, w) in [(Spin::Alpha, 0.5), (Spin::Beta, -0.5)] {
            let j = spin_orbital(n_spatial, p, spin);
            let term = raising_op(mapping, m, j)
                .mul_op(&lowering_op(mapping, m, j))
                .scaled(Complex64::from(w));
            op = (&op + &term).pruned(1e-14);
        }
    }
    op
}

/// The total-spin operator `S² = S₋S₊ + Sz(Sz + 1)` on `2n` qubits, with
/// `S₊ = Σ_p a†_{pα} a_{pβ}`. Eigenvalues are `s(s+1)`: 0 for singlets,
/// 2 for triplets — the paper's spin-preservation constraint (§3 step 5)
/// penalizes deviations from the target sector's value.
pub fn s_squared_operator(n_spatial: usize, mapping: Mapping) -> PauliOp {
    let m = 2 * n_spatial;
    let mut s_plus = PauliOp::zero(m);
    for p in 0..n_spatial {
        let up = spin_orbital(n_spatial, p, Spin::Alpha);
        let dn = spin_orbital(n_spatial, p, Spin::Beta);
        let term = raising_op(mapping, m, up).mul_op(&lowering_op(mapping, m, dn));
        s_plus = (&s_plus + &term).pruned(1e-14);
    }
    let s_minus = s_plus.clone().dagger();
    let sz = sz_operator(n_spatial, mapping);
    let sz_sq = sz.mul_op(&sz);
    let mut s2 = s_minus.mul_op(&s_plus);
    s2 = &s2 + &sz_sq;
    s2 = &s2 + &sz;
    s2.pruned(1e-12)
}

/// Removes the two symmetry qubits of the parity mapping (blocked
/// ordering): qubit `n−1` stores the α-electron parity and qubit `2n−1`
/// the total parity. For a fixed `(n_alpha, n_beta)` sector their Z
/// eigenvalues are constants, so every (symmetry-conserving) operator term
/// restricts to the remaining `2n−2` qubits.
///
/// # Panics
///
/// Panics if any term carries X/Y on a symmetry qubit (i.e. the operator
/// does not conserve the two parities).
pub fn taper_two_qubits(op: &PauliOp, n_alpha: usize, n_beta: usize) -> PauliOp {
    let m = op.num_qubits();
    assert!(m >= 2 && m % 2 == 0, "expected an even spin-orbital register");
    let alpha_qubit = m / 2 - 1;
    let total_qubit = m - 1;
    let z_alpha = if n_alpha % 2 == 0 { 1.0 } else { -1.0 };
    let z_total = if (n_alpha + n_beta) % 2 == 0 { 1.0 } else { -1.0 };
    let dropped_total = op.map_terms(m - 1, |p| {
        let (had_z, q) = p.remove_qubit(total_qubit);
        (Complex64::from(if had_z { z_total } else { 1.0 }), q)
    });
    dropped_total
        .map_terms(m - 2, |p| {
            let (had_z, q) = p.remove_qubit(alpha_qubit);
            (Complex64::from(if had_z { z_alpha } else { 1.0 }), q)
        })
        .pruned(1e-12)
}

/// The Hartree-Fock determinant's bitstring in the chosen encoding.
///
/// Occupations fill the lowest `n_alpha` α and `n_beta` β spatial
/// orbitals. With `tapered = true` (parity only) the two symmetry qubits
/// are removed, matching [`taper_two_qubits`].
pub fn hf_bitstring(
    mapping: Mapping,
    n_spatial: usize,
    n_alpha: usize,
    n_beta: usize,
    tapered: bool,
) -> u64 {
    let m = 2 * n_spatial;
    let mut occ = vec![false; m];
    for p in 0..n_alpha {
        occ[p] = true;
    }
    for p in 0..n_beta {
        occ[n_spatial + p] = true;
    }
    let bits: Vec<bool> = match mapping {
        Mapping::JordanWigner => occ,
        Mapping::Parity => {
            let mut parity = false;
            occ.iter()
                .map(|&o| {
                    parity ^= o;
                    parity
                })
                .collect()
        }
    };
    assert!(
        !(tapered && mapping == Mapping::JordanWigner),
        "tapering is defined for the parity mapping"
    );
    let mut out = 0u64;
    let mut idx = 0;
    for (j, &b) in bits.iter().enumerate() {
        if tapered && (j == n_spatial - 1 || j == m - 1) {
            continue;
        }
        if b {
            out |= 1 << idx;
        }
        idx += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cafqa_linalg::Complex64;

    fn dense(op: &PauliOp) -> Vec<Complex64> {
        op.to_dense()
    }

    fn dense_mul(n: usize, a: &[Complex64], b: &[Complex64]) -> Vec<Complex64> {
        let dim = 1usize << n;
        let mut out = vec![Complex64::ZERO; dim * dim];
        for i in 0..dim {
            for k in 0..dim {
                if a[i * dim + k].norm_sqr() == 0.0 {
                    continue;
                }
                for j in 0..dim {
                    out[i * dim + j] += a[i * dim + k] * b[k * dim + j];
                }
            }
        }
        out
    }

    /// Checks the canonical anticommutation relations for both encodings.
    #[test]
    fn car_algebra_holds() {
        for mapping in [Mapping::JordanWigner, Mapping::Parity] {
            let m = 3;
            let dim = 1usize << m;
            for i in 0..m {
                for j in 0..m {
                    let ai = dense(&lowering_op(mapping, m, i));
                    let aj = dense(&lowering_op(mapping, m, j));
                    let adj = dense(&raising_op(mapping, m, j));
                    // {a_i, a_j} = 0
                    let anti1: Vec<Complex64> = dense_mul(m, &ai, &aj)
                        .iter()
                        .zip(&dense_mul(m, &aj, &ai))
                        .map(|(x, y)| *x + *y)
                        .collect();
                    for v in &anti1 {
                        assert!(v.norm() < 1e-12, "{mapping:?} {{a{i},a{j}}} ≠ 0");
                    }
                    // {a_i, a†_j} = δ_ij
                    let anti2: Vec<Complex64> = dense_mul(m, &ai, &adj)
                        .iter()
                        .zip(&dense_mul(m, &adj, &ai))
                        .map(|(x, y)| *x + *y)
                        .collect();
                    for (idx, v) in anti2.iter().enumerate() {
                        let expect = if i == j && idx % (dim + 1) == 0 { 1.0 } else { 0.0 };
                        assert!(
                            (v.re - expect).abs() < 1e-12 && v.im.abs() < 1e-12,
                            "{mapping:?} {{a{i},a†{j}}} wrong at {idx}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn number_operator_spectrum() {
        for mapping in [Mapping::JordanWigner, Mapping::Parity] {
            let nop = number_operator(1, mapping); // 2 spin orbitals
            let mat = dense(&nop);
            // Eigenvalues of N on 2 orbitals: {0, 1, 1, 2} (diagonal in the
            // encoded basis for both mappings).
            let mut diag: Vec<f64> = (0..4).map(|i| mat[i * 4 + i].re).collect();
            diag.sort_by(|a, b| a.partial_cmp(b).unwrap());
            for (d, expect) in diag.iter().zip([0.0, 1.0, 1.0, 2.0]) {
                assert!((d - expect).abs() < 1e-12, "{mapping:?}: {diag:?}");
            }
        }
    }

    #[test]
    fn jw_number_operator_counts_bits() {
        let nop = number_operator(2, Mapping::JordanWigner); // 4 spin orbitals
        for bits in 0..16u64 {
            let expect = bits.count_ones() as f64;
            assert!((nop.expectation_basis(bits) - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn parity_number_operator_counts_transitions() {
        let nop = number_operator(2, Mapping::Parity);
        // In the parity basis, n_j = p_j ⊕ p_{j−1}; check a few states.
        // occ = 1100 (orbitals 0,1 occupied) → parity bits 1, 0, 0, 0.
        assert!((nop.expectation_basis(0b0001) - 2.0).abs() < 1e-12);
        // occ = 0000 → parity 0000.
        assert!((nop.expectation_basis(0b0000) - 0.0).abs() < 1e-12);
        // occ = 1000 → parity 1111.
        assert!((nop.expectation_basis(0b1111) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hf_bitstrings() {
        // 2 spatial orbitals, 1α + 1β: occupations 1010 (orbital 0 of each
        // spin block).
        assert_eq!(hf_bitstring(Mapping::JordanWigner, 2, 1, 1, false), 0b0101);
        // Parity prefix XOR of (1,0,1,0) = (1,1,0,0).
        assert_eq!(hf_bitstring(Mapping::Parity, 2, 1, 1, false), 0b0011);
        // Tapered drops qubits 1 and 3 → bits (1, 0) → 0b01.
        assert_eq!(hf_bitstring(Mapping::Parity, 2, 1, 1, true), 0b01);
    }

    #[test]
    fn s_squared_spectrum_one_orbital() {
        // One spatial orbital (2 spin orbitals): states are the vacuum
        // (s=0), two doublets (s=1/2 → 0.75) and the paired singlet (s=0).
        for mapping in [Mapping::JordanWigner, Mapping::Parity] {
            let s2 = s_squared_operator(1, mapping);
            let terms = s2.real_basis_terms(1e-10).expect("S² is real");
            let dim = 4;
            let mut mat = cafqa_linalg::Matrix::zeros(dim, dim);
            for &(f, xm, zm) in &terms {
                for b in 0..dim {
                    let sign = if (zm & b as u64).count_ones() % 2 == 0 { f } else { -f };
                    mat[(b ^ xm as usize, b)] += sign;
                }
            }
            let mut eig = mat.eigh().unwrap().values;
            eig.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let expect = [0.0, 0.0, 0.75, 0.75];
            for (e, x) in eig.iter().zip(expect) {
                assert!((e - x).abs() < 1e-9, "{mapping:?}: {eig:?}");
            }
        }
    }

    #[test]
    fn s_squared_on_two_orbital_sectors() {
        // Two spatial orbitals: the αα state (both spins up) is a triplet
        // component with S² = 2; the closed-shell state is a singlet.
        let s2 = s_squared_operator(2, Mapping::JordanWigner);
        let triplet_bits = hf_bitstring(Mapping::JordanWigner, 2, 2, 0, false);
        assert!((s2.expectation_basis(triplet_bits) - 2.0).abs() < 1e-10);
        let singlet_bits = hf_bitstring(Mapping::JordanWigner, 2, 1, 1, false);
        assert!(s2.expectation_basis(singlet_bits).abs() < 1e-10);
    }

    #[test]
    fn sz_operator_on_hf_states() {
        let sz = sz_operator(2, Mapping::JordanWigner);
        let bits_singlet = hf_bitstring(Mapping::JordanWigner, 2, 1, 1, false);
        assert!((sz.expectation_basis(bits_singlet)).abs() < 1e-12);
        let bits_triplet = hf_bitstring(Mapping::JordanWigner, 2, 2, 0, false);
        assert!((sz.expectation_basis(bits_triplet) - 1.0).abs() < 1e-12);
    }
}
