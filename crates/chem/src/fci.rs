//! Full configuration interaction — the paper's "Exact" reference.
//!
//! Builds the Hamiltonian in the Slater-determinant basis of the active
//! space via the Slater–Condon rules and finds the ground state with
//! Lanczos. Feasible up to ~10 active orbitals (the H2-S1 surrogate's
//! 63 504 determinants); the Cr2-class 34-qubit system is deliberately out
//! of reach, exactly as in the paper.

use std::collections::HashMap;

use cafqa_linalg::lanczos::{self, LanczosOptions, SymmetricOp};
use cafqa_linalg::LinalgError;

use crate::active_space::{Spin, SpinIntegrals};

/// Guard on the determinant-space dimension.
pub const MAX_DETERMINANTS: usize = 100_000;

/// FCI failure modes.
#[derive(Debug, Clone)]
pub enum FciError {
    /// The determinant space exceeds [`MAX_DETERMINANTS`].
    TooLarge {
        /// The offending dimension.
        dimension: usize,
    },
    /// Eigensolver failure.
    Linalg(LinalgError),
}

impl std::fmt::Display for FciError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FciError::TooLarge { dimension } => {
                write!(f, "determinant space of {dimension} exceeds {MAX_DETERMINANTS}")
            }
            FciError::Linalg(e) => write!(f, "fci eigensolver failure: {e}"),
        }
    }
}

impl std::error::Error for FciError {}

/// Enumerates all `n_orb`-bit masks with exactly `n_elec` bits set,
/// ascending.
fn strings(n_orb: usize, n_elec: usize) -> Vec<u32> {
    let mut out = Vec::new();
    let total = 1u32 << n_orb;
    for mask in 0..total {
        if mask.count_ones() as usize == n_elec {
            out.push(mask);
        }
    }
    out
}

/// Sign of moving an electron `from → to` in `det` (both orbitals exist in
/// the right occupation), as `(new_det, parity)`.
fn excite(det: u32, from: usize, to: usize) -> (u32, f64) {
    debug_assert!(det & (1 << from) != 0 && det & (1 << to) == 0);
    let removed = det & !(1 << from);
    let (lo, hi) = if from < to { (from + 1, to) } else { (to + 1, from) };
    let between = if hi > lo { (removed >> lo) & ((1 << (hi - lo)) - 1) } else { 0 };
    let sign = if between.count_ones() % 2 == 0 { 1.0 } else { -1.0 };
    (removed | (1 << to), sign)
}

fn occupied(det: u32, n_orb: usize) -> Vec<usize> {
    (0..n_orb).filter(|&p| det & (1 << p) != 0).collect()
}

fn virtuals(det: u32, n_orb: usize) -> Vec<usize> {
    (0..n_orb).filter(|&p| det & (1 << p) == 0).collect()
}

/// A sparse FCI Hamiltonian (electronic part only; add
/// [`SpinIntegrals::core_energy`] for totals).
struct FciMatrix {
    dim: usize,
    /// CSR-style storage: for each row, `(col, value)` with `col >= row`.
    rows: Vec<Vec<(u32, f64)>>,
}

impl SymmetricOp for FciMatrix {
    fn dim(&self) -> usize {
        self.dim
    }
    fn apply(&self, x: &[f64], y: &mut [f64]) {
        for (r, entries) in self.rows.iter().enumerate() {
            for &(c, v) in entries {
                let c = c as usize;
                y[r] += v * x[c];
                if c != r {
                    y[c] += v * x[r];
                }
            }
        }
    }
}

/// One-body effective element for a single excitation `p → q` of spin
/// `sigma` within determinant pair (same other-spin string).
fn single_element(
    si: &SpinIntegrals,
    sigma: Spin,
    p: usize,
    q: usize,
    occ_same: &[usize],
    occ_other: &[usize],
) -> f64 {
    let other = match sigma {
        Spin::Alpha => Spin::Beta,
        Spin::Beta => Spin::Alpha,
    };
    let mut v = si.h(sigma, p, q);
    for &r in occ_same {
        v += si.eri(sigma, sigma, p, q, r, r) - si.eri(sigma, sigma, p, r, r, q);
    }
    for &r in occ_other {
        v += si.eri(sigma, other, p, q, r, r);
    }
    v
}

fn diagonal_element(si: &SpinIntegrals, occ_a: &[usize], occ_b: &[usize]) -> f64 {
    let mut e = 0.0;
    for &p in occ_a {
        e += si.h(Spin::Alpha, p, p);
    }
    for &p in occ_b {
        e += si.h(Spin::Beta, p, p);
    }
    for &p in occ_a {
        for &q in occ_a {
            e += 0.5
                * (si.eri(Spin::Alpha, Spin::Alpha, p, p, q, q)
                    - si.eri(Spin::Alpha, Spin::Alpha, p, q, q, p));
        }
    }
    for &p in occ_b {
        for &q in occ_b {
            e += 0.5
                * (si.eri(Spin::Beta, Spin::Beta, p, p, q, q)
                    - si.eri(Spin::Beta, Spin::Beta, p, q, q, p));
        }
    }
    for &p in occ_a {
        for &q in occ_b {
            e += si.eri(Spin::Alpha, Spin::Beta, p, p, q, q);
        }
    }
    e
}

fn build_matrix(si: &SpinIntegrals, n_alpha: usize, n_beta: usize) -> Result<FciMatrix, FciError> {
    let n = si.n;
    let alphas = strings(n, n_alpha);
    let betas = strings(n, n_beta);
    let na = alphas.len();
    let nb = betas.len();
    let dim = na * nb;
    if dim > MAX_DETERMINANTS {
        return Err(FciError::TooLarge { dimension: dim });
    }
    let a_index: HashMap<u32, usize> = alphas.iter().enumerate().map(|(i, &s)| (s, i)).collect();
    let b_index: HashMap<u32, usize> = betas.iter().enumerate().map(|(i, &s)| (s, i)).collect();
    let idx = |ia: usize, ib: usize| ia * nb + ib;
    let mut rows: Vec<Vec<(u32, f64)>> = vec![Vec::new(); dim];
    let occ_a: Vec<Vec<usize>> = alphas.iter().map(|&d| occupied(d, n)).collect();
    let occ_b: Vec<Vec<usize>> = betas.iter().map(|&d| occupied(d, n)).collect();
    let virt_a: Vec<Vec<usize>> = alphas.iter().map(|&d| virtuals(d, n)).collect();
    let virt_b: Vec<Vec<usize>> = betas.iter().map(|&d| virtuals(d, n)).collect();

    // Precompute spin-resolved single excitations: (from_string_index,
    // to_string_index, p, q, sign).
    let singles =
        |strs: &[u32], index: &HashMap<u32, usize>, occs: &[Vec<usize>], virts: &[Vec<usize>]| {
            let mut out: Vec<Vec<(usize, usize, usize, f64)>> = vec![Vec::new(); strs.len()];
            for (i, &d) in strs.iter().enumerate() {
                for &p in &occs[i] {
                    for &q in &virts[i] {
                        let (d2, sign) = excite(d, p, q);
                        out[i].push((index[&d2], p, q, sign));
                    }
                }
            }
            out
        };
    let singles_a = singles(&alphas, &a_index, &occ_a, &virt_a);
    let singles_b = singles(&betas, &b_index, &occ_b, &virt_b);

    for ia in 0..na {
        for ib in 0..nb {
            let row = idx(ia, ib);
            // Diagonal.
            rows[row].push((row as u32, diagonal_element(si, &occ_a[ia], &occ_b[ib])));
            // α singles (and α doubles through paired singles below).
            for &(ja, p, q, sign) in &singles_a[ia] {
                let col = idx(ja, ib);
                if col > row {
                    let v = sign * single_element(si, Spin::Alpha, p, q, &occ_a[ia], &occ_b[ib]);
                    if v.abs() > 1e-14 {
                        rows[row].push((col as u32, v));
                    }
                }
            }
            // β singles.
            for &(jb, p, q, sign) in &singles_b[ib] {
                let col = idx(ia, jb);
                if col > row {
                    let v = sign * single_element(si, Spin::Beta, p, q, &occ_b[ib], &occ_a[ia]);
                    if v.abs() > 1e-14 {
                        rows[row].push((col as u32, v));
                    }
                }
            }
            // Same-spin doubles (α): i<j occupied, a<b virtual.
            let oa = &occ_a[ia];
            let va = &virt_a[ia];
            for (ii, &i) in oa.iter().enumerate() {
                for &j in &oa[(ii + 1)..] {
                    for (ai, &a) in va.iter().enumerate() {
                        for &b in &va[(ai + 1)..] {
                            let (d1, s1) = excite(alphas[ia], i, a);
                            let (d2, s2) = excite(d1, j, b);
                            let col = idx(a_index[&d2], ib);
                            if col > row {
                                let v = s1
                                    * s2
                                    * (si.eri(Spin::Alpha, Spin::Alpha, i, a, j, b)
                                        - si.eri(Spin::Alpha, Spin::Alpha, i, b, j, a));
                                if v.abs() > 1e-14 {
                                    rows[row].push((col as u32, v));
                                }
                            }
                        }
                    }
                }
            }
            // Same-spin doubles (β).
            let ob = &occ_b[ib];
            let vb = &virt_b[ib];
            for (ii, &i) in ob.iter().enumerate() {
                for &j in &ob[(ii + 1)..] {
                    for (ai, &a) in vb.iter().enumerate() {
                        for &b in &vb[(ai + 1)..] {
                            let (d1, s1) = excite(betas[ib], i, a);
                            let (d2, s2) = excite(d1, j, b);
                            let col = idx(ia, b_index[&d2]);
                            if col > row {
                                let v = s1
                                    * s2
                                    * (si.eri(Spin::Beta, Spin::Beta, i, a, j, b)
                                        - si.eri(Spin::Beta, Spin::Beta, i, b, j, a));
                                if v.abs() > 1e-14 {
                                    rows[row].push((col as u32, v));
                                }
                            }
                        }
                    }
                }
            }
            // Opposite-spin doubles: one α single × one β single.
            for &(ja, p, q, sa) in &singles_a[ia] {
                for &(jb, r, s, sb) in &singles_b[ib] {
                    let col = idx(ja, jb);
                    if col > row {
                        let v = sa * sb * si.eri(Spin::Alpha, Spin::Beta, p, q, r, s);
                        if v.abs() > 1e-14 {
                            rows[row].push((col as u32, v));
                        }
                    }
                }
            }
        }
    }
    Ok(FciMatrix { dim, rows })
}

/// An FCI solution.
#[derive(Debug, Clone)]
pub struct FciResult {
    /// Total ground-state energy including core and nuclear terms.
    pub energy: f64,
    /// Determinant-space dimension.
    pub dimension: usize,
    /// Residual norm of the converged eigenpair.
    pub residual: f64,
}

/// Computes the exact ground-state energy of the active space in the
/// `(n_alpha, n_beta)` sector.
///
/// # Errors
///
/// Fails if the determinant space exceeds [`MAX_DETERMINANTS`] or the
/// eigensolver does not converge.
pub fn fci_ground_state(
    si: &SpinIntegrals,
    n_alpha: usize,
    n_beta: usize,
) -> Result<FciResult, FciError> {
    let matrix = build_matrix(si, n_alpha, n_beta)?;
    let dim = matrix.dim;
    if dim == 1 {
        let mut y = vec![0.0];
        matrix.apply(&[1.0], &mut y);
        return Ok(FciResult { energy: y[0] + si.core_energy, dimension: 1, residual: 0.0 });
    }
    let opts = LanczosOptions {
        max_subspace: 60,
        max_restarts: 60,
        tolerance: 1e-8,
        ..Default::default()
    };
    let pair = lanczos::lowest_eigenpair(&matrix, &opts).map_err(FciError::Linalg)?;
    Ok(FciResult { energy: pair.value + si.core_energy, dimension: dim, residual: pair.residual })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::active_space::{active_space_integrals, ActiveSpace};
    use crate::basis::BasisSet;
    use crate::geometry::{Element, Molecule, BOHR_PER_ANGSTROM};
    use crate::integrals::compute_ao_integrals;
    use crate::scf::{rhf, ScfOptions};

    fn h2_integrals(r_bohr: f64) -> SpinIntegrals {
        let m = Molecule::diatomic(Element::H, Element::H, r_bohr / BOHR_PER_ANGSTROM);
        let b = BasisSet::sto3g(&m);
        let ints = compute_ao_integrals(&m, &b);
        let scf = rhf(&ints, 2, &ScfOptions::default()).unwrap();
        active_space_integrals(&ints, &scf, &ActiveSpace::full(2))
    }

    #[test]
    fn excite_signs() {
        // det 0b0011, move orbital 0 → 2: one electron (orbital 1) between.
        let (d, s) = excite(0b0011, 0, 2);
        assert_eq!(d, 0b0110);
        assert_eq!(s, -1.0);
        // move orbital 1 → 2: none between.
        let (d, s) = excite(0b0011, 1, 2);
        assert_eq!(d, 0b0101);
        assert_eq!(s, 1.0);
    }

    #[test]
    fn string_counts() {
        assert_eq!(strings(6, 3).len(), 20);
        assert_eq!(strings(7, 5).len(), 21);
    }

    #[test]
    fn h2_fci_matches_literature() {
        // FCI/STO-3G at R = 1.4 a₀ ≈ −1.1373 Ha (Szabo–Ostlund full CI).
        let si = h2_integrals(1.4);
        let fci = fci_ground_state(&si, 1, 1).unwrap();
        assert_eq!(fci.dimension, 4);
        assert!((fci.energy + 1.1373).abs() < 2e-3, "E = {}", fci.energy);
    }

    #[test]
    fn fci_below_hf_by_correlation_energy() {
        let si = h2_integrals(2.8); // stretched: large correlation
        let e_hf = crate::active_space::hf_energy_from_integrals(&si);
        let fci = fci_ground_state(&si, 1, 1).unwrap();
        assert!(fci.energy < e_hf - 0.05, "HF {e_hf} vs FCI {}", fci.energy);
    }

    #[test]
    fn one_electron_sector() {
        // H2+ in the neutral molecule's orbital basis: exact 1-electron
        // diagonalization, dimension C(2,1)·C(2,0) = 2.
        let si = h2_integrals(1.4);
        let fci = fci_ground_state(&si, 1, 0).unwrap();
        assert_eq!(fci.dimension, 2);
        // Cation lies above the neutral molecule.
        let neutral = fci_ground_state(&si, 1, 1).unwrap();
        assert!(fci.energy > neutral.energy);
    }

    #[test]
    fn too_large_guarded() {
        let si = h2_integrals(1.4);
        // Fake a huge space by calling with absurd electron counts is not
        // possible (n=2), so check the guard arithmetic directly.
        let dim = strings(17, 8).len();
        assert!(dim * dim > MAX_DETERMINANTS);
        let _ = si;
    }
}
