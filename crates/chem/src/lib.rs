//! Ab initio quantum chemistry for CAFQA, built from scratch.
//!
//! This crate replaces the paper's PySCF/Psi4/Qiskit-Nature stack
//! (DESIGN.md §4.5): STO-3G Gaussian [`integrals`], restricted and
//! unrestricted Hartree-Fock ([`rhf`]/[`uhf`]), active-space reduction,
//! Jordan–Wigner and parity fermion-to-qubit [`mapping`]s with the
//! two-qubit Z2 reduction, and a determinant-space FCI reference solver
//! ([`fci_ground_state`]) standing in for the paper's "Exact" curves.
//!
//! The top-level entry point is [`ChemPipeline`], which takes a catalog
//! molecule ([`MoleculeKind`]) and a bond length to a ready-to-search
//! [`MolecularProblem`] (qubit Hamiltonian + HF bitstring + FCI
//! reference).
//!
//! # Examples
//!
//! ```
//! use cafqa_chem::{ChemPipeline, MoleculeKind, ScfKind};
//!
//! let pipe = ChemPipeline::build(MoleculeKind::H2, 0.74, &ScfKind::Rhf)?;
//! let (na, nb) = pipe.default_sector();
//! let problem = pipe.problem(na, nb, true)?;
//! assert_eq!(problem.n_qubits, 2);
//! assert!(problem.exact_energy.unwrap() < problem.hf_energy);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
#![warn(missing_docs)]

mod active_space;
mod basis;
mod fci;
mod geometry;
pub mod integrals;
pub mod mapping;
mod molecules;
mod problem;
mod scf;

pub use active_space::{
    active_space_integrals, hf_energy_from_integrals, ActiveSpace, Spin, SpinIntegrals,
};
pub use basis::{AoKind, BasisFunction, BasisSet};
pub use fci::{fci_ground_state, FciError, FciResult, MAX_DETERMINANTS};
pub use geometry::{dist, Atom, Element, Molecule, BOHR_PER_ANGSTROM};
pub use integrals::{compute_ao_integrals, AoIntegrals, EriTensor};
pub use mapping::{
    hf_bitstring, lowering_op, number_operator, qubit_hamiltonian, raising_op, s_squared_operator,
    spin_orbital, sz_operator, taper_two_qubits, Mapping,
};
pub use molecules::{
    hydrogen_chain, hydrogen_ring, select_active_space, MoleculeKind, ALL_MOLECULES,
};
pub use problem::{qubit_ground_energy, ChemError, ChemPipeline, MolecularProblem, ScfKind};
pub use scf::{rhf, uhf, ScfError, ScfOptions, ScfResult};
