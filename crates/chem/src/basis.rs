//! STO-3G basis data and contracted Gaussian basis functions.
//!
//! Exponents and contraction coefficients are transcribed from the
//! standard STO-3G tables (Hehre, Stewart & Pople 1969; as distributed by
//! the Basis Set Exchange). Second-period elements share one set of
//! exponents between the 2s and 2p shells (the "SP" shells below), and Na
//! additionally carries an SP shell for 3s/3p — this is what gives the
//! paper's orbital counts in Table 1 (e.g. NaH: 10 spatial orbitals).

use crate::geometry::{Element, Molecule};

/// A primitive-contraction shell: shared exponents with per-angular-part
/// coefficients.
#[derive(Debug, Clone)]
enum Shell {
    /// An s shell.
    S { exps: [f64; 3], coefs: [f64; 3] },
    /// A combined s+p shell with shared exponents.
    Sp { exps: [f64; 3], s_coefs: [f64; 3], p_coefs: [f64; 3] },
}

fn shells(element: Element) -> Vec<Shell> {
    const S_1S: [f64; 3] = [0.154_328_967_3, 0.535_328_142_3, 0.444_634_542_2];
    const S_2S: [f64; 3] = [-0.099_967_229_19, 0.399_512_826_1, 0.700_115_468_9];
    const P_2P: [f64; 3] = [0.155_916_275_0, 0.607_683_718_6, 0.391_957_393_1];
    const S_3S: [f64; 3] = [-0.219_620_369_0, 0.225_595_433_6, 0.900_398_426_0];
    const P_3P: [f64; 3] = [0.010_587_604_29, 0.595_167_005_3, 0.462_001_012_0];
    match element {
        Element::H => {
            vec![Shell::S { exps: [3.425_250_91, 0.623_913_73, 0.168_855_40], coefs: S_1S }]
        }
        Element::Li => vec![
            Shell::S { exps: [16.119_575_0, 2.936_200_7, 0.794_650_5], coefs: S_1S },
            Shell::Sp {
                exps: [0.636_289_7, 0.147_860_1, 0.048_088_7],
                s_coefs: S_2S,
                p_coefs: P_2P,
            },
        ],
        Element::Be => vec![
            Shell::S { exps: [30.167_871_0, 5.495_115_3, 1.487_192_7], coefs: S_1S },
            Shell::Sp {
                exps: [1.314_833_1, 0.305_538_9, 0.099_370_7],
                s_coefs: S_2S,
                p_coefs: P_2P,
            },
        ],
        Element::N => vec![
            Shell::S { exps: [99.106_169_0, 18.052_312_0, 4.885_660_2], coefs: S_1S },
            Shell::Sp {
                exps: [3.780_455_9, 0.878_496_6, 0.285_714_4],
                s_coefs: S_2S,
                p_coefs: P_2P,
            },
        ],
        Element::O => vec![
            Shell::S { exps: [130.709_320_0, 23.808_861_0, 6.443_608_3], coefs: S_1S },
            Shell::Sp {
                exps: [5.033_151_3, 1.169_596_1, 0.380_389_0],
                s_coefs: S_2S,
                p_coefs: P_2P,
            },
        ],
        Element::Na => vec![
            Shell::S { exps: [250.772_430_0, 45.678_511_0, 12.362_388_0], coefs: S_1S },
            Shell::Sp {
                exps: [12.040_193_0, 2.797_881_9, 0.909_958_0],
                s_coefs: S_2S,
                p_coefs: P_2P,
            },
            Shell::Sp {
                exps: [1.478_740_6, 0.412_564_9, 0.161_475_1],
                s_coefs: S_3S,
                p_coefs: P_3P,
            },
        ],
    }
}

/// A normalized contracted Cartesian Gaussian basis function
/// `Σ_k c_k N_k (x−Ax)^l (y−Ay)^m (z−Az)^n e^{−α_k r²}`.
#[derive(Debug, Clone)]
pub struct BasisFunction {
    /// Cartesian angular powers `(l, m, n)`.
    pub powers: [u32; 3],
    /// Center in bohr.
    pub center: [f64; 3],
    /// Primitive exponents.
    pub exps: Vec<f64>,
    /// Contraction coefficients, with primitive and contraction
    /// normalization folded in.
    pub coefs: Vec<f64>,
}

fn double_factorial(n: i64) -> f64 {
    if n <= 0 {
        return 1.0;
    }
    let mut acc = 1.0;
    let mut k = n;
    while k > 1 {
        acc *= k as f64;
        k -= 2;
    }
    acc
}

impl BasisFunction {
    /// Builds a normalized contracted Gaussian.
    pub fn new(powers: [u32; 3], center: [f64; 3], exps: &[f64], raw_coefs: &[f64]) -> Self {
        assert_eq!(exps.len(), raw_coefs.len());
        let (l, m, n) = (powers[0] as i64, powers[1] as i64, powers[2] as i64);
        let total = (l + m + n) as f64;
        // Primitive normalization for a Cartesian Gaussian.
        let coefs: Vec<f64> = exps
            .iter()
            .zip(raw_coefs)
            .map(|(&a, &c)| {
                let norm = (2.0 * a / std::f64::consts::PI).powf(0.75)
                    * (4.0 * a).powf(total / 2.0)
                    / (double_factorial(2 * l - 1)
                        * double_factorial(2 * m - 1)
                        * double_factorial(2 * n - 1))
                    .sqrt();
                c * norm
            })
            .collect();
        let mut bf = BasisFunction { powers, center, exps: exps.to_vec(), coefs };
        // Contraction normalization: ⟨bf|bf⟩ = 1 exactly.
        let s = crate::integrals::overlap(&bf, &bf);
        let scale = 1.0 / s.sqrt();
        for c in bf.coefs.iter_mut() {
            *c *= scale;
        }
        bf
    }

    /// Total angular momentum `l + m + n`.
    pub fn angular_momentum(&self) -> u32 {
        self.powers.iter().sum()
    }
}

/// Labels for basis functions (used in orbital-character detection).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AoKind {
    /// An s-type function.
    S,
    /// A p-type function along the given axis (0 = x, 1 = y, 2 = z).
    P(usize),
}

/// The STO-3G basis set for a whole molecule.
#[derive(Debug, Clone)]
pub struct BasisSet {
    /// The basis functions, in atom order (s before p within a shell).
    pub functions: Vec<BasisFunction>,
    /// Per-function labels.
    pub kinds: Vec<AoKind>,
    /// Index of the atom each function sits on.
    pub atom_of: Vec<usize>,
}

impl BasisSet {
    /// Builds the STO-3G basis for a molecule.
    pub fn sto3g(molecule: &Molecule) -> Self {
        let mut functions = Vec::new();
        let mut kinds = Vec::new();
        let mut atom_of = Vec::new();
        for (ai, atom) in molecule.atoms.iter().enumerate() {
            for shell in shells(atom.element) {
                match shell {
                    Shell::S { exps, coefs } => {
                        functions.push(BasisFunction::new([0, 0, 0], atom.position, &exps, &coefs));
                        kinds.push(AoKind::S);
                        atom_of.push(ai);
                    }
                    Shell::Sp { exps, s_coefs, p_coefs } => {
                        functions.push(BasisFunction::new(
                            [0, 0, 0],
                            atom.position,
                            &exps,
                            &s_coefs,
                        ));
                        kinds.push(AoKind::S);
                        atom_of.push(ai);
                        for axis in 0..3 {
                            let mut powers = [0u32; 3];
                            powers[axis] = 1;
                            functions.push(BasisFunction::new(
                                powers,
                                atom.position,
                                &exps,
                                &p_coefs,
                            ));
                            kinds.push(AoKind::P(axis));
                            atom_of.push(ai);
                        }
                    }
                }
            }
        }
        BasisSet { functions, kinds, atom_of }
    }

    /// Number of basis functions (= spatial orbitals).
    pub fn len(&self) -> usize {
        self.functions.len()
    }

    /// True when the basis is empty.
    pub fn is_empty(&self) -> bool {
        self.functions.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Element;

    #[test]
    fn basis_sizes_match_paper_table1() {
        let count = |m: &Molecule| BasisSet::sto3g(m).len();
        assert_eq!(count(&Molecule::diatomic(Element::H, Element::H, 0.74)), 2);
        assert_eq!(count(&Molecule::diatomic(Element::Li, Element::H, 1.6)), 6);
        assert_eq!(count(&Molecule::diatomic(Element::N, Element::N, 1.09)), 10);
        // NaH: Na has 1s + 2sp + 3sp = 9 functions, plus H = 10 total.
        assert_eq!(count(&Molecule::diatomic(Element::Na, Element::H, 1.9)), 10);
        let h2o = Molecule::from_angstrom(&[
            (Element::O, [0.0, 0.0, 0.0]),
            (Element::H, [0.0, 0.76, 0.59]),
            (Element::H, [0.0, -0.76, 0.59]),
        ]);
        assert_eq!(count(&h2o), 7);
    }

    #[test]
    fn functions_are_normalized() {
        let m = Molecule::diatomic(Element::O, Element::H, 1.0);
        let basis = BasisSet::sto3g(&m);
        for f in &basis.functions {
            let s = crate::integrals::overlap(f, f);
            assert!((s - 1.0).abs() < 1e-10, "self-overlap {s}");
        }
    }

    #[test]
    fn double_factorial_values() {
        assert_eq!(double_factorial(-1), 1.0);
        assert_eq!(double_factorial(0), 1.0);
        assert_eq!(double_factorial(1), 1.0);
        assert_eq!(double_factorial(3), 3.0);
        assert_eq!(double_factorial(5), 15.0);
        assert_eq!(double_factorial(7), 105.0);
    }
}
