//! MO-basis integrals restricted to an active space.
//!
//! Implements the paper's Table 1 "Mol Orbitals Total / Used" column:
//! frozen doubly-occupied core orbitals fold into a scalar core energy and
//! a one-body correction, deleted virtuals simply leave the index set.

use cafqa_linalg::Matrix;

use crate::integrals::{AoIntegrals, EriTensor};
use crate::scf::ScfResult;

/// Spin label for integral lookups.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Spin {
    /// α (spin-up).
    Alpha,
    /// β (spin-down).
    Beta,
}

/// Active-space electronic integrals in the (possibly spin-dependent) MO
/// basis, ready for second quantization.
#[derive(Debug, Clone)]
pub struct SpinIntegrals {
    /// Number of active spatial orbitals.
    pub n: usize,
    /// α one-body integrals `h_pq` (active × active), including the
    /// frozen-core correction.
    pub h_alpha: Matrix,
    /// β one-body integrals.
    pub h_beta: Matrix,
    /// `(pq|rs)` with both pairs α.
    pub eri_aa: EriTensor,
    /// `(pq|rs)` with the first pair α, second pair β.
    pub eri_ab: EriTensor,
    /// `(pq|rs)` with both pairs β.
    pub eri_bb: EriTensor,
    /// Nuclear repulsion plus frozen-core energy.
    pub core_energy: f64,
    /// Active α electrons.
    pub n_alpha: usize,
    /// Active β electrons.
    pub n_beta: usize,
}

impl SpinIntegrals {
    /// The one-body integral for a given spin.
    pub fn h(&self, spin: Spin, p: usize, q: usize) -> f64 {
        match spin {
            Spin::Alpha => self.h_alpha[(p, q)],
            Spin::Beta => self.h_beta[(p, q)],
        }
    }

    /// The two-body integral `(pq|rs)` with the first pair of indices in
    /// spin `s1` and the second in spin `s2` (chemist notation).
    pub fn eri(&self, s1: Spin, s2: Spin, p: usize, q: usize, r: usize, s: usize) -> f64 {
        match (s1, s2) {
            (Spin::Alpha, Spin::Alpha) => self.eri_aa.get(p, q, r, s),
            (Spin::Alpha, Spin::Beta) => self.eri_ab.get(p, q, r, s),
            (Spin::Beta, Spin::Alpha) => self.eri_ab.get(r, s, p, q),
            (Spin::Beta, Spin::Beta) => self.eri_bb.get(p, q, r, s),
        }
    }
}

/// Transforms the AO ERI tensor into the MO basis, with the first index
/// pair over `c1`'s columns in `sel1` and the second over `c2`'s columns
/// in `sel2`.
fn transform_eri(
    ao: &EriTensor,
    c1: &Matrix,
    sel1: &[usize],
    c2: &Matrix,
    sel2: &[usize],
) -> EriTensor {
    let n = ao.len();
    let m1 = sel1.len();
    let m2 = sel2.len();
    // Stage 1-2: first pair.
    let mut t1 = vec![0.0; m1 * n * n * n];
    for (pi, &p) in sel1.iter().enumerate() {
        for nu in 0..n {
            for lam in 0..n {
                for sig in 0..n {
                    let mut acc = 0.0;
                    for mu in 0..n {
                        acc += c1[(mu, p)] * ao.get(mu, nu, lam, sig);
                    }
                    t1[((pi * n + nu) * n + lam) * n + sig] = acc;
                }
            }
        }
    }
    let mut t2 = vec![0.0; m1 * m1 * n * n];
    for pi in 0..m1 {
        for (qi, &q) in sel1.iter().enumerate() {
            for lam in 0..n {
                for sig in 0..n {
                    let mut acc = 0.0;
                    for nu in 0..n {
                        acc += c1[(nu, q)] * t1[((pi * n + nu) * n + lam) * n + sig];
                    }
                    t2[((pi * m1 + qi) * n + lam) * n + sig] = acc;
                }
            }
        }
    }
    let mut t3 = vec![0.0; m1 * m1 * m2 * n];
    for pi in 0..m1 {
        for qi in 0..m1 {
            for (ri, &r) in sel2.iter().enumerate() {
                for sig in 0..n {
                    let mut acc = 0.0;
                    for lam in 0..n {
                        acc += c2[(lam, r)] * t2[((pi * m1 + qi) * n + lam) * n + sig];
                    }
                    t3[((pi * m1 + qi) * m2 + ri) * n + sig] = acc;
                }
            }
        }
    }
    let big = m1.max(m2);
    EriTensor::from_fn(big, |p, q, r, s| {
        if p >= m1 || q >= m1 || r >= m2 || s >= m2 {
            return 0.0;
        }
        let mut total = 0.0;
        for sig in 0..n {
            total += c2[(sig, sel2[s])] * t3[((p * m1 + q) * m2 + r) * n + sig];
        }
        total
    })
}

/// Specification of the active space, as MO index lists.
#[derive(Debug, Clone, Default)]
pub struct ActiveSpace {
    /// Doubly-occupied MOs folded into the core (RHF orbitals only).
    pub frozen: Vec<usize>,
    /// Active MO indices, ascending.
    pub active: Vec<usize>,
}

impl ActiveSpace {
    /// The trivial active space: all `n` orbitals active, none frozen.
    pub fn full(n: usize) -> Self {
        ActiveSpace { frozen: vec![], active: (0..n).collect() }
    }
}

/// Builds active-space spin integrals from an SCF solution.
///
/// For RHF results the α and β blocks coincide; for UHF results the three
/// ERI blocks are transformed with the respective orbital sets. Frozen
/// orbitals are only supported for RHF (all molecules in the paper that
/// freeze orbitals are closed-shell singlets).
///
/// # Panics
///
/// Panics if `frozen` is non-empty for a UHF result, or if the active
/// electron count goes negative.
pub fn active_space_integrals(
    ints: &AoIntegrals,
    scf: &ScfResult,
    space: &ActiveSpace,
) -> SpinIntegrals {
    let is_uhf = scf.coefficients_beta.is_some();
    assert!(!is_uhf || space.frozen.is_empty(), "frozen core is only supported on RHF references");
    let ca = &scf.coefficients;
    let cb = scf.coefficients_beta.as_ref().unwrap_or(ca);
    let n_ao = ca.rows();
    let nact = space.active.len();

    // Full one-body MO transform per spin.
    let h_mo = |c: &Matrix| -> Matrix {
        let tmp = &c.transpose() * &ints.core_hamiltonian;
        &tmp * c
    };
    let ha_full = h_mo(ca);
    let hb_full = h_mo(cb);

    // ERI over the union of frozen and active indices (RHF case needs
    // frozen blocks for the core correction; UHF has no frozen).
    let mut sel: Vec<usize> = space.frozen.clone();
    sel.extend(&space.active);
    let pos_of_active: Vec<usize> = (0..nact).map(|k| space.frozen.len() + k).collect();

    let eri_aa_sel = transform_eri(&ints.eri, ca, &sel, ca, &sel);
    let (eri_ab_sel, eri_bb_sel) = if is_uhf {
        (transform_eri(&ints.eri, ca, &sel, cb, &sel), transform_eri(&ints.eri, cb, &sel, cb, &sel))
    } else {
        (eri_aa_sel.clone(), eri_aa_sel.clone())
    };

    // Frozen-core energy and one-body correction (RHF-only path).
    let nf = space.frozen.len();
    let mut core_energy = ints.nuclear_repulsion;
    for (fi, &f) in space.frozen.iter().enumerate() {
        core_energy += 2.0 * ha_full[(f, f)];
        for fj in 0..nf {
            core_energy += 2.0 * eri_aa_sel.get(fi, fi, fj, fj) - eri_aa_sel.get(fi, fj, fj, fi);
        }
    }
    let h_active = |h_full: &Matrix| -> Matrix {
        Matrix::from_fn(nact, nact, |p, q| {
            let (ap, aq) = (space.active[p], space.active[q]);
            let mut v = h_full[(ap, aq)];
            for fi in 0..nf {
                v += 2.0 * eri_aa_sel.get(pos_of_active[p], pos_of_active[q], fi, fi)
                    - eri_aa_sel.get(pos_of_active[p], fi, fi, pos_of_active[q]);
            }
            v
        })
    };
    let h_alpha = h_active(&ha_full);
    let h_beta = if is_uhf { h_active(&hb_full) } else { h_alpha.clone() };

    let restrict = |t: &EriTensor| {
        EriTensor::from_fn(nact, |p, q, r, s| {
            t.get(pos_of_active[p], pos_of_active[q], pos_of_active[r], pos_of_active[s])
        })
    };
    let n_alpha = scf.n_alpha.checked_sub(nf).expect("frozen exceed alpha electrons");
    let n_beta = scf.n_beta.checked_sub(nf).expect("frozen exceed beta electrons");
    let _ = n_ao;
    SpinIntegrals {
        n: nact,
        h_alpha,
        h_beta,
        eri_aa: restrict(&eri_aa_sel),
        eri_ab: restrict(&eri_ab_sel),
        eri_bb: restrict(&eri_bb_sel),
        core_energy,
        n_alpha,
        n_beta,
    }
}

/// Hartree-Fock energy recomputed from active-space integrals (a strong
/// internal consistency check: must reproduce the SCF total energy).
pub fn hf_energy_from_integrals(si: &SpinIntegrals) -> f64 {
    let mut e = si.core_energy;
    for p in 0..si.n_alpha {
        e += si.h_alpha[(p, p)];
    }
    for p in 0..si.n_beta {
        e += si.h_beta[(p, p)];
    }
    for p in 0..si.n_alpha {
        for q in 0..si.n_alpha {
            e += 0.5 * (si.eri_aa.get(p, p, q, q) - si.eri_aa.get(p, q, q, p));
        }
    }
    for p in 0..si.n_beta {
        for q in 0..si.n_beta {
            e += 0.5 * (si.eri_bb.get(p, p, q, q) - si.eri_bb.get(p, q, q, p));
        }
    }
    for p in 0..si.n_alpha {
        for q in 0..si.n_beta {
            e += si.eri_ab.get(p, p, q, q);
        }
    }
    e
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basis::BasisSet;
    use crate::geometry::{Element, Molecule};
    use crate::integrals::compute_ao_integrals;
    use crate::scf::{rhf, uhf, ScfOptions};

    fn h2_setup() -> (AoIntegrals, ScfResult) {
        let m = Molecule::diatomic(Element::H, Element::H, 0.735);
        let b = BasisSet::sto3g(&m);
        let ints = compute_ao_integrals(&m, &b);
        let scf = rhf(&ints, 2, &ScfOptions::default()).unwrap();
        (ints, scf)
    }

    #[test]
    fn hf_energy_reconstructed_from_mo_integrals() {
        let (ints, scf) = h2_setup();
        let si = active_space_integrals(&ints, &scf, &ActiveSpace::full(2));
        let e = hf_energy_from_integrals(&si);
        assert!((e - scf.energy).abs() < 1e-9, "{e} vs {}", scf.energy);
    }

    #[test]
    fn uhf_integrals_reconstruct_energy() {
        let m = Molecule::diatomic(Element::H, Element::H, 2.5);
        let b = BasisSet::sto3g(&m);
        let ints = compute_ao_integrals(&m, &b);
        let opts = ScfOptions { guess_mix: 0.4, ..ScfOptions::default() };
        let scf = uhf(&ints, 1, 1, &opts).unwrap();
        let si = active_space_integrals(&ints, &scf, &ActiveSpace::full(2));
        let e = hf_energy_from_integrals(&si);
        assert!((e - scf.energy).abs() < 1e-8, "{e} vs {}", scf.energy);
    }

    #[test]
    fn frozen_core_preserves_hf_energy() {
        // LiH: freezing the Li 1s core must leave the HF total energy
        // unchanged when recomputed from the active integrals.
        let m = Molecule::diatomic(Element::Li, Element::H, 1.6);
        let b = BasisSet::sto3g(&m);
        let ints = compute_ao_integrals(&m, &b);
        let scf = rhf(&ints, 4, &ScfOptions::default()).unwrap();
        let space = ActiveSpace { frozen: vec![0], active: (1..6).collect() };
        let si = active_space_integrals(&ints, &scf, &space);
        assert_eq!(si.n_alpha, 1);
        let e = hf_energy_from_integrals(&si);
        assert!((e - scf.energy).abs() < 1e-8, "{e} vs {}", scf.energy);
    }

    #[test]
    fn mo_eri_has_physical_symmetry() {
        let (ints, scf) = h2_setup();
        let si = active_space_integrals(&ints, &scf, &ActiveSpace::full(2));
        for p in 0..2 {
            for q in 0..2 {
                for r in 0..2 {
                    for s in 0..2 {
                        let v = si.eri_aa.get(p, q, r, s);
                        assert!((v - si.eri_aa.get(q, p, r, s)).abs() < 1e-10);
                        assert!((v - si.eri_aa.get(r, s, p, q)).abs() < 1e-10);
                    }
                }
            }
        }
    }

    #[test]
    fn spin_lookup_transposes_mixed_block() {
        let (ints, scf) = h2_setup();
        let si = active_space_integrals(&ints, &scf, &ActiveSpace::full(2));
        let a = si.eri(Spin::Beta, Spin::Alpha, 0, 1, 1, 0);
        let b = si.eri(Spin::Alpha, Spin::Beta, 1, 0, 0, 1);
        assert!((a - b).abs() < 1e-12);
    }
}
