//! Molecular integrals over contracted Gaussians (McMurchie–Davidson).
//!
//! Implements the one-electron (overlap, kinetic, nuclear attraction) and
//! two-electron repulsion integrals through Hermite Gaussian expansions,
//! valid for arbitrary angular momentum (the built-in basis uses s and p).

use cafqa_linalg::Matrix;

use crate::basis::{BasisFunction, BasisSet};
use crate::geometry::Molecule;

/// Boys function values `F_0(t) … F_{m_max}(t)`.
///
/// Uses the convergent downward recursion from a truncated series for
/// small `t` and the asymptotic value plus upward recursion for large `t`.
pub fn boys(m_max: usize, t: f64) -> Vec<f64> {
    let mut f = vec![0.0; m_max + 1];
    if t < 1e-13 {
        for (m, fm) in f.iter_mut().enumerate() {
            *fm = 1.0 / (2.0 * m as f64 + 1.0);
        }
        return f;
    }
    if t < 35.0 {
        // Series for the highest order, then downward recursion (stable).
        let m = m_max as f64;
        let mut term = 1.0 / (2.0 * m + 1.0);
        let mut acc = term;
        let mut i = 1.0;
        loop {
            term *= 2.0 * t / (2.0 * m + 2.0 * i + 1.0);
            acc += term;
            if term < 1e-17 * acc {
                break;
            }
            i += 1.0;
        }
        let emt = (-t).exp();
        f[m_max] = emt * acc;
        for k in (1..=m_max).rev() {
            f[k - 1] = (2.0 * t * f[k] + emt) / (2.0 * k as f64 - 1.0);
        }
    } else {
        // Asymptotic F_0 plus upward recursion (stable for large t).
        let emt = (-t).exp();
        f[0] = 0.5 * (std::f64::consts::PI / t).sqrt();
        for k in 0..m_max {
            f[k + 1] = ((2.0 * k as f64 + 1.0) * f[k] - emt) / (2.0 * t);
        }
    }
    f
}

/// Hermite expansion coefficient `E_t^{ij}` along one axis.
///
/// `qx = Ax − Bx`, `a`/`b` the primitive exponents.
fn hermite_e(i: i32, j: i32, t: i32, qx: f64, a: f64, b: f64) -> f64 {
    let p = a + b;
    let q = a * b / p;
    if t < 0 || t > i + j {
        0.0
    } else if i == 0 && j == 0 && t == 0 {
        (-q * qx * qx).exp()
    } else if j == 0 {
        // Decrement i: bring down (P − A) = −(b/p)·qx = −q·qx/a.
        hermite_e(i - 1, j, t - 1, qx, a, b) / (2.0 * p)
            - (q * qx / a) * hermite_e(i - 1, j, t, qx, a, b)
            + (t + 1) as f64 * hermite_e(i - 1, j, t + 1, qx, a, b)
    } else {
        // Decrement j: (P − B) = +(a/p)·qx = q·qx/b.
        hermite_e(i, j - 1, t - 1, qx, a, b) / (2.0 * p)
            + (q * qx / b) * hermite_e(i, j - 1, t, qx, a, b)
            + (t + 1) as f64 * hermite_e(i, j - 1, t + 1, qx, a, b)
    }
}

/// Hermite Coulomb auxiliary integral `R^n_{tuv}` with precomputed Boys
/// table `f[n] = (F_n(p·|PC|²))`.
fn hermite_r(t: i32, u: i32, v: i32, n: usize, p: f64, pc: [f64; 3], f: &[f64]) -> f64 {
    if t == 0 && u == 0 && v == 0 {
        (-2.0 * p).powi(n as i32) * f[n]
    } else if t > 0 {
        let mut val = pc[0] * hermite_r(t - 1, u, v, n + 1, p, pc, f);
        if t > 1 {
            val += (t - 1) as f64 * hermite_r(t - 2, u, v, n + 1, p, pc, f);
        }
        val
    } else if u > 0 {
        let mut val = pc[1] * hermite_r(t, u - 1, v, n + 1, p, pc, f);
        if u > 1 {
            val += (u - 1) as f64 * hermite_r(t, u - 2, v, n + 1, p, pc, f);
        }
        val
    } else {
        let mut val = pc[2] * hermite_r(t, u, v - 1, n + 1, p, pc, f);
        if v > 1 {
            val += (v - 1) as f64 * hermite_r(t, u, v - 2, n + 1, p, pc, f);
        }
        val
    }
}

fn gaussian_product_center(a: f64, ca: [f64; 3], b: f64, cb: [f64; 3]) -> [f64; 3] {
    let p = a + b;
    [(a * ca[0] + b * cb[0]) / p, (a * ca[1] + b * cb[1]) / p, (a * ca[2] + b * cb[2]) / p]
}

fn primitive_overlap(
    a: f64,
    la: [u32; 3],
    ca: [f64; 3],
    b: f64,
    lb: [u32; 3],
    cb: [f64; 3],
) -> f64 {
    let p = a + b;
    let mut s = (std::f64::consts::PI / p).powf(1.5);
    for axis in 0..3 {
        s *= hermite_e(la[axis] as i32, lb[axis] as i32, 0, ca[axis] - cb[axis], a, b);
    }
    s
}

fn primitive_kinetic(
    a: f64,
    la: [u32; 3],
    ca: [f64; 3],
    b: f64,
    lb: [u32; 3],
    cb: [f64; 3],
) -> f64 {
    let l = lb[0] as f64;
    let m = lb[1] as f64;
    let n = lb[2] as f64;
    let shift = |axis: usize, delta: i32| -> [u32; 3] {
        let mut out = lb;
        let v = out[axis] as i32 + delta;
        if v < 0 {
            // Encoded as an impossible power; caller guards with the factor.
            out[axis] = 0;
        } else {
            out[axis] = v as u32;
        }
        out
    };
    let s0 = primitive_overlap(a, la, ca, b, lb, cb);
    let mut term = b * (2.0 * (l + m + n) + 3.0) * s0;
    term += -2.0
        * b
        * b
        * (primitive_overlap(a, la, ca, b, shift(0, 2), cb)
            + primitive_overlap(a, la, ca, b, shift(1, 2), cb)
            + primitive_overlap(a, la, ca, b, shift(2, 2), cb));
    if l >= 2.0 {
        term += -0.5 * l * (l - 1.0) * primitive_overlap(a, la, ca, b, shift(0, -2), cb);
    }
    if m >= 2.0 {
        term += -0.5 * m * (m - 1.0) * primitive_overlap(a, la, ca, b, shift(1, -2), cb);
    }
    if n >= 2.0 {
        term += -0.5 * n * (n - 1.0) * primitive_overlap(a, la, ca, b, shift(2, -2), cb);
    }
    term
}

fn primitive_nuclear(
    a: f64,
    la: [u32; 3],
    ca: [f64; 3],
    b: f64,
    lb: [u32; 3],
    cb: [f64; 3],
    nucleus: [f64; 3],
) -> f64 {
    let p = a + b;
    let pcenter = gaussian_product_center(a, ca, b, cb);
    let pc = [pcenter[0] - nucleus[0], pcenter[1] - nucleus[1], pcenter[2] - nucleus[2]];
    let r2 = pc[0] * pc[0] + pc[1] * pc[1] + pc[2] * pc[2];
    let lmax = (la[0] + lb[0] + la[1] + lb[1] + la[2] + lb[2]) as usize;
    let f = boys(lmax, p * r2);
    let mut val = 0.0;
    for t in 0..=(la[0] + lb[0]) as i32 {
        for u in 0..=(la[1] + lb[1]) as i32 {
            for v in 0..=(la[2] + lb[2]) as i32 {
                let e = hermite_e(la[0] as i32, lb[0] as i32, t, ca[0] - cb[0], a, b)
                    * hermite_e(la[1] as i32, lb[1] as i32, u, ca[1] - cb[1], a, b)
                    * hermite_e(la[2] as i32, lb[2] as i32, v, ca[2] - cb[2], a, b);
                if e == 0.0 {
                    continue;
                }
                val += e * hermite_r(t, u, v, 0, p, pc, &f);
            }
        }
    }
    2.0 * std::f64::consts::PI / p * val
}

#[allow(clippy::too_many_arguments)]
fn primitive_eri(
    a: f64,
    la: [u32; 3],
    ca: [f64; 3],
    b: f64,
    lb: [u32; 3],
    cb: [f64; 3],
    c: f64,
    lc: [u32; 3],
    cc: [f64; 3],
    d: f64,
    ld: [u32; 3],
    cd: [f64; 3],
) -> f64 {
    let p = a + b;
    let q = c + d;
    let alpha = p * q / (p + q);
    let pp = gaussian_product_center(a, ca, b, cb);
    let qq = gaussian_product_center(c, cc, d, cd);
    let pq = [pp[0] - qq[0], pp[1] - qq[1], pp[2] - qq[2]];
    let r2 = pq[0] * pq[0] + pq[1] * pq[1] + pq[2] * pq[2];
    let lmax = (la.iter().sum::<u32>()
        + lb.iter().sum::<u32>()
        + lc.iter().sum::<u32>()
        + ld.iter().sum::<u32>()) as usize;
    let f = boys(lmax, alpha * r2);
    let mut val = 0.0;
    for t in 0..=(la[0] + lb[0]) as i32 {
        for u in 0..=(la[1] + lb[1]) as i32 {
            for v in 0..=(la[2] + lb[2]) as i32 {
                let e1 = hermite_e(la[0] as i32, lb[0] as i32, t, ca[0] - cb[0], a, b)
                    * hermite_e(la[1] as i32, lb[1] as i32, u, ca[1] - cb[1], a, b)
                    * hermite_e(la[2] as i32, lb[2] as i32, v, ca[2] - cb[2], a, b);
                if e1 == 0.0 {
                    continue;
                }
                for tau in 0..=(lc[0] + ld[0]) as i32 {
                    for nu in 0..=(lc[1] + ld[1]) as i32 {
                        for phi in 0..=(lc[2] + ld[2]) as i32 {
                            let e2 =
                                hermite_e(lc[0] as i32, ld[0] as i32, tau, cc[0] - cd[0], c, d)
                                    * hermite_e(
                                        lc[1] as i32,
                                        ld[1] as i32,
                                        nu,
                                        cc[1] - cd[1],
                                        c,
                                        d,
                                    )
                                    * hermite_e(
                                        lc[2] as i32,
                                        ld[2] as i32,
                                        phi,
                                        cc[2] - cd[2],
                                        c,
                                        d,
                                    );
                            if e2 == 0.0 {
                                continue;
                            }
                            let sign = if (tau + nu + phi) % 2 == 0 { 1.0 } else { -1.0 };
                            val += e1
                                * e2
                                * sign
                                * hermite_r(t + tau, u + nu, v + phi, 0, alpha, pq, &f);
                        }
                    }
                }
            }
        }
    }
    2.0 * std::f64::consts::PI.powf(2.5) / (p * q * (p + q).sqrt()) * val
}

/// Contracted overlap integral `⟨a|b⟩`.
pub fn overlap(a: &BasisFunction, b: &BasisFunction) -> f64 {
    let mut s = 0.0;
    for (&ea, &ca) in a.exps.iter().zip(&a.coefs) {
        for (&eb, &cb) in b.exps.iter().zip(&b.coefs) {
            s += ca * cb * primitive_overlap(ea, a.powers, a.center, eb, b.powers, b.center);
        }
    }
    s
}

/// Contracted kinetic-energy integral `⟨a|−∇²/2|b⟩`.
pub fn kinetic(a: &BasisFunction, b: &BasisFunction) -> f64 {
    let mut s = 0.0;
    for (&ea, &ca) in a.exps.iter().zip(&a.coefs) {
        for (&eb, &cb) in b.exps.iter().zip(&b.coefs) {
            s += ca * cb * primitive_kinetic(ea, a.powers, a.center, eb, b.powers, b.center);
        }
    }
    s
}

/// Contracted nuclear-attraction integral `⟨a|1/|r−C||b⟩` (positive;
/// multiply by `−Z` for the attraction term).
pub fn nuclear(a: &BasisFunction, b: &BasisFunction, nucleus: [f64; 3]) -> f64 {
    let mut s = 0.0;
    for (&ea, &ca) in a.exps.iter().zip(&a.coefs) {
        for (&eb, &cb) in b.exps.iter().zip(&b.coefs) {
            s += ca
                * cb
                * primitive_nuclear(ea, a.powers, a.center, eb, b.powers, b.center, nucleus);
        }
    }
    s
}

/// Contracted two-electron repulsion integral `(ab|cd)` in chemist
/// notation.
pub fn eri(a: &BasisFunction, b: &BasisFunction, c: &BasisFunction, d: &BasisFunction) -> f64 {
    let mut s = 0.0;
    for (&ea, &ca) in a.exps.iter().zip(&a.coefs) {
        for (&eb, &cb) in b.exps.iter().zip(&b.coefs) {
            for (&ec, &cc) in c.exps.iter().zip(&c.coefs) {
                for (&ed, &cd) in d.exps.iter().zip(&d.coefs) {
                    s += ca
                        * cb
                        * cc
                        * cd
                        * primitive_eri(
                            ea, a.powers, a.center, eb, b.powers, b.center, ec, c.powers, c.center,
                            ed, d.powers, d.center,
                        );
                }
            }
        }
    }
    s
}

/// The dense two-electron integral tensor `(pq|rs)`.
#[derive(Debug, Clone)]
pub struct EriTensor {
    n: usize,
    data: Vec<f64>,
}

impl EriTensor {
    /// Number of basis functions.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The integral `(pq|rs)`.
    #[inline]
    pub fn get(&self, p: usize, q: usize, r: usize, s: usize) -> f64 {
        self.data[((p * self.n + q) * self.n + r) * self.n + s]
    }

    fn set(&mut self, p: usize, q: usize, r: usize, s: usize, v: f64) {
        self.data[((p * self.n + q) * self.n + r) * self.n + s] = v;
    }

    /// Builds a tensor directly from values (used by MO transforms).
    pub fn from_fn(n: usize, mut f: impl FnMut(usize, usize, usize, usize) -> f64) -> Self {
        let mut t = EriTensor { n, data: vec![0.0; n * n * n * n] };
        for p in 0..n {
            for q in 0..n {
                for r in 0..n {
                    for s in 0..n {
                        let v = f(p, q, r, s);
                        t.set(p, q, r, s, v);
                    }
                }
            }
        }
        t
    }
}

/// One- and two-electron AO integrals for a molecule.
#[derive(Debug, Clone)]
pub struct AoIntegrals {
    /// Overlap matrix `S`.
    pub overlap: Matrix,
    /// Core Hamiltonian `H = T + V`.
    pub core_hamiltonian: Matrix,
    /// Two-electron tensor `(pq|rs)`.
    pub eri: EriTensor,
    /// Nuclear repulsion energy.
    pub nuclear_repulsion: f64,
}

/// Computes every AO integral for `molecule` in the given basis,
/// exploiting the 8-fold permutational symmetry of the ERIs.
pub fn compute_ao_integrals(molecule: &Molecule, basis: &BasisSet) -> AoIntegrals {
    let n = basis.len();
    let fs = &basis.functions;
    let overlap_m = Matrix::from_fn(n, n, |i, j| {
        if i <= j {
            overlap(&fs[i], &fs[j])
        } else {
            overlap(&fs[j], &fs[i])
        }
    });
    let kinetic_m = Matrix::from_fn(n, n, |i, j| {
        if i <= j {
            kinetic(&fs[i], &fs[j])
        } else {
            kinetic(&fs[j], &fs[i])
        }
    });
    let mut core = kinetic_m;
    for atom in &molecule.atoms {
        let z = atom.element.atomic_number() as f64;
        for i in 0..n {
            for j in i..n {
                let v = -z * nuclear(&fs[i], &fs[j], atom.position);
                core[(i, j)] += v;
                if i != j {
                    core[(j, i)] += v;
                }
            }
        }
    }
    let mut tensor = EriTensor { n, data: vec![0.0; n * n * n * n] };
    for p in 0..n {
        for q in 0..=p {
            for r in 0..=p {
                let s_max = if r == p { q } else { r };
                for s in 0..=s_max {
                    let v = eri(&fs[p], &fs[q], &fs[r], &fs[s]);
                    // All 8 permutations share this value.
                    for (a, b, c, d) in [
                        (p, q, r, s),
                        (q, p, r, s),
                        (p, q, s, r),
                        (q, p, s, r),
                        (r, s, p, q),
                        (s, r, p, q),
                        (r, s, q, p),
                        (s, r, q, p),
                    ] {
                        tensor.set(a, b, c, d, v);
                    }
                }
            }
        }
    }
    AoIntegrals {
        overlap: overlap_m,
        core_hamiltonian: core,
        eri: tensor,
        nuclear_repulsion: molecule.nuclear_repulsion(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::{Element, BOHR_PER_ANGSTROM};

    fn h2_szabo() -> (Molecule, BasisSet) {
        // Szabo–Ostlund reference geometry: R = 1.4 bohr.
        let m = Molecule::diatomic(Element::H, Element::H, 1.4 / BOHR_PER_ANGSTROM);
        let b = BasisSet::sto3g(&m);
        (m, b)
    }

    #[test]
    fn boys_zero_argument() {
        let f = boys(4, 0.0);
        for (m, fm) in f.iter().enumerate() {
            assert!((fm - 1.0 / (2.0 * m as f64 + 1.0)).abs() < 1e-14);
        }
    }

    #[test]
    fn boys_matches_quadrature() {
        // F_m(t) = ∫_0^1 u^{2m} exp(-t u²) du by Simpson's rule.
        for &t in &[0.1, 1.0, 5.0, 20.0, 40.0, 80.0] {
            let f = boys(3, t);
            for m in 0..=3 {
                let steps = 20_000;
                let h = 1.0 / steps as f64;
                let mut acc = 0.0;
                for k in 0..steps {
                    let x0 = k as f64 * h;
                    let x1 = x0 + h / 2.0;
                    let x2 = x0 + h;
                    let g = |u: f64| u.powi(2 * m as i32) * (-t * u * u).exp();
                    acc += h / 6.0 * (g(x0) + 4.0 * g(x1) + g(x2));
                }
                assert!((f[m] - acc).abs() < 1e-9, "t={t} m={m}: {} vs {acc}", f[m]);
            }
        }
    }

    #[test]
    fn h2_overlap_matches_szabo_ostlund() {
        let (_, b) = h2_szabo();
        let s12 = overlap(&b.functions[0], &b.functions[1]);
        assert!((s12 - 0.6593).abs() < 5e-4, "S12 = {s12}");
    }

    #[test]
    fn h2_kinetic_matches_szabo_ostlund() {
        let (_, b) = h2_szabo();
        let t11 = kinetic(&b.functions[0], &b.functions[0]);
        let t12 = kinetic(&b.functions[0], &b.functions[1]);
        assert!((t11 - 0.7600).abs() < 5e-4, "T11 = {t11}");
        assert!((t12 - 0.2365).abs() < 5e-4, "T12 = {t12}");
    }

    #[test]
    fn h2_nuclear_matches_szabo_ostlund() {
        let (m, b) = h2_szabo();
        let v11a = -nuclear(&b.functions[0], &b.functions[0], m.atoms[0].position);
        let v12a = -nuclear(&b.functions[0], &b.functions[1], m.atoms[0].position);
        let v22a = -nuclear(&b.functions[1], &b.functions[1], m.atoms[0].position);
        assert!((v11a + 1.2266).abs() < 5e-4, "V11A = {v11a}");
        assert!((v12a + 0.5974).abs() < 5e-4, "V12A = {v12a}");
        assert!((v22a + 0.6538).abs() < 5e-4, "V22A = {v22a}");
    }

    #[test]
    fn h2_eri_matches_szabo_ostlund() {
        let (_, b) = h2_szabo();
        let f = &b.functions;
        let v1111 = eri(&f[0], &f[0], &f[0], &f[0]);
        let v2211 = eri(&f[1], &f[1], &f[0], &f[0]);
        let v2111 = eri(&f[1], &f[0], &f[0], &f[0]);
        let v2121 = eri(&f[1], &f[0], &f[1], &f[0]);
        assert!((v1111 - 0.7746).abs() < 5e-4, "(11|11) = {v1111}");
        assert!((v2211 - 0.5697).abs() < 5e-4, "(22|11) = {v2211}");
        assert!((v2111 - 0.4441).abs() < 5e-4, "(21|11) = {v2111}");
        assert!((v2121 - 0.2970).abs() < 5e-4, "(21|21) = {v2121}");
    }

    #[test]
    fn eri_tensor_has_eightfold_symmetry() {
        let m = Molecule::diatomic(Element::Li, Element::H, 1.6);
        let b = BasisSet::sto3g(&m);
        let ints = compute_ao_integrals(&m, &b);
        let n = b.len();
        // Spot-check symmetry on a few random-ish indices.
        for &(p, q, r, s) in &[(0, 1, 2, 3), (1, 4, 0, 5), (2, 2, 3, 1)] {
            let v = ints.eri.get(p, q, r, s);
            assert!((v - ints.eri.get(q, p, r, s)).abs() < 1e-12);
            assert!((v - ints.eri.get(p, q, s, r)).abs() < 1e-12);
            assert!((v - ints.eri.get(r, s, p, q)).abs() < 1e-12);
        }
        let _ = n;
    }

    #[test]
    fn p_orbital_overlap_is_diagonal_on_same_center() {
        let m = Molecule::diatomic(Element::O, Element::H, 1.0);
        let b = BasisSet::sto3g(&m);
        // O's px/py/pz are functions 2, 3, 4; mutually orthogonal.
        for i in 2..5 {
            for j in 2..5 {
                let s = overlap(&b.functions[i], &b.functions[j]);
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((s - expect).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn core_hamiltonian_is_symmetric() {
        let m = Molecule::from_angstrom(&[
            (Element::O, [0.0, 0.0, 0.0]),
            (Element::H, [0.0, 0.76, 0.59]),
            (Element::H, [0.0, -0.76, 0.59]),
        ]);
        let b = BasisSet::sto3g(&m);
        let ints = compute_ao_integrals(&m, &b);
        assert!(ints.core_hamiltonian.asymmetry() < 1e-10);
        assert!(ints.overlap.asymmetry() < 1e-12);
    }
}
