//! Smoke tests over the full molecule catalog (Table 1): every system the
//! paper evaluates builds end-to-end with the advertised register size,
//! and the energy-ordering invariants hold.

use cafqa::chem::{ChemPipeline, MoleculeKind, ScfKind};
use cafqa::circuit::{Ansatz, EfficientSu2};
use cafqa::clifford::Tableau;
use cafqa::core::metrics::CHEMICAL_ACCURACY;

/// Catalog entries small enough to FCI-check in a unit test.
const FCI_CHECKED: [MoleculeKind; 5] =
    [MoleculeKind::H2, MoleculeKind::LiH, MoleculeKind::H2O, MoleculeKind::H6, MoleculeKind::BeH2];

#[test]
fn every_fci_checked_molecule_builds_with_paper_register() {
    for kind in FCI_CHECKED {
        let pipe = ChemPipeline::build(kind, kind.equilibrium_bond(), &ScfKind::Rhf)
            .unwrap_or_else(|e| panic!("{}: {e}", kind.name()));
        let (na, nb) = pipe.default_sector();
        let problem = pipe.problem(na, nb, true).unwrap();
        assert_eq!(problem.n_qubits, kind.num_qubits(), "{}", kind.name());
        // HF bitstring reproduces the SCF energy through the qubit H.
        assert!(
            (problem.hf_energy - problem.scf_energy).abs() < 1e-7,
            "{}: hf {} vs scf {}",
            kind.name(),
            problem.hf_energy,
            problem.scf_energy
        );
        // Exact ≤ HF (variational), with nonzero correlation energy.
        let exact = problem.exact_energy.unwrap();
        assert!(exact < problem.hf_energy, "{}", kind.name());
        assert!(
            problem.hf_energy - exact > CHEMICAL_ACCURACY,
            "{}: correlation energy suspiciously small",
            kind.name()
        );
        // The Hamiltonian is Hermitian and real in the computational basis.
        assert!(problem.hamiltonian.is_hermitian(1e-9), "{}", kind.name());
        assert!(problem.hamiltonian.real_basis_terms(1e-9).is_some(), "{}", kind.name());
    }
}

#[test]
fn frozen_core_molecules_build_with_paper_register() {
    // N2 and NaH exercise the frozen-core + dropped-virtual rules.
    for kind in [MoleculeKind::N2, MoleculeKind::NaH] {
        let pipe = ChemPipeline::build(kind, kind.equilibrium_bond(), &ScfKind::Rhf)
            .unwrap_or_else(|e| panic!("{}: {e}", kind.name()));
        assert_eq!(
            pipe.spin_integrals.n,
            kind.orbital_counts().1,
            "{}: active orbital count",
            kind.name()
        );
        let (na, nb) = pipe.default_sector();
        let problem = pipe.problem(na, nb, true).unwrap();
        assert_eq!(problem.n_qubits, 12, "{}", kind.name());
        assert!(
            (problem.hf_energy - problem.scf_energy).abs() < 1e-7,
            "{}: frozen-core energy bookkeeping broken",
            kind.name()
        );
        let exact = problem.exact_energy.unwrap();
        assert!(exact < problem.hf_energy, "{}", kind.name());
    }
}

#[test]
fn h10_ring_surrogate_is_eighteen_qubits() {
    let kind = MoleculeKind::H2S1Surrogate;
    let pipe = ChemPipeline::build(kind, kind.equilibrium_bond(), &ScfKind::Rhf).unwrap();
    let (na, nb) = pipe.default_sector();
    assert_eq!((na, nb), (5, 5));
    // Skip the (feasible but slow) FCI here; the experiment binaries
    // compute it. The register and HF roundtrip are what this checks.
    let problem = pipe.problem(na, nb, false).unwrap();
    assert_eq!(problem.n_qubits, 18);
    assert!((problem.hf_energy - problem.scf_energy).abs() < 1e-7);
    // The number operator counts the ring's 10 electrons on the HF state.
    let n = problem.number_op.expectation_basis(problem.hf_bits);
    assert!((n - 10.0).abs() < 1e-9, "N = {n}");
}

#[test]
fn hf_configs_are_tableau_exact_across_catalog() {
    // The CAFQA ≥ HF guarantee rests on the ansatz reproducing the HF
    // bitstring exactly; verify through the stabilizer simulator for
    // every 12-qubit catalog entry.
    for kind in [MoleculeKind::H2O, MoleculeKind::BeH2, MoleculeKind::N2] {
        let pipe = ChemPipeline::build(kind, kind.equilibrium_bond(), &ScfKind::Rhf).unwrap();
        let (na, nb) = pipe.default_sector();
        let problem = pipe.problem(na, nb, false).unwrap();
        let ansatz = EfficientSu2::new(problem.n_qubits, 1);
        let circuit = ansatz.bind_clifford(&ansatz.basis_state_config(problem.hf_bits));
        let energy = Tableau::from_circuit(&circuit).unwrap().expectation(&problem.hamiltonian);
        assert!(
            (energy - problem.hf_energy).abs() < 1e-9,
            "{}: {energy} vs {}",
            kind.name(),
            problem.hf_energy
        );
    }
}

#[test]
fn bond_sweeps_cover_paper_ranges() {
    for kind in cafqa::chem::ALL_MOLECULES {
        let sweep = kind.bond_sweep();
        assert!(sweep.len() >= 5, "{}", kind.name());
        assert!(sweep.windows(2).all(|w| w[0] < w[1]), "{}: not ascending", kind.name());
        let eq = kind.equilibrium_bond();
        assert!(*sweep.first().unwrap() < eq, "{}", kind.name());
        assert!(*sweep.last().unwrap() > eq, "{}", kind.name());
    }
}
