//! Integration tests for the estimator stack: exact, noisy, and
//! finite-shot expectation paths must tell one consistent story.

use cafqa::chem::{ChemPipeline, MoleculeKind, ScfKind};
use cafqa::circuit::{Ansatz, EfficientSu2};
use cafqa::core::{CafqaOptions, MolecularCafqa};
use cafqa::sim::{NoiseModel, ShotEstimator, Statevector};

/// Finite-shot estimation of a CAFQA-initialized molecular circuit agrees
/// with the exact statevector expectation within sampling error.
#[test]
fn shot_estimator_agrees_with_exact_on_molecular_circuit() {
    let pipe = ChemPipeline::build(MoleculeKind::H2, 1.2, &ScfKind::Rhf).unwrap();
    let problem = pipe.problem(1, 1, false).unwrap();
    let h = problem.hamiltonian.clone();
    let runner = MolecularCafqa::new(problem);
    let result = runner.run(&CafqaOptions::quick());
    let circuit = runner.circuit(&result);
    let exact = Statevector::from_circuit(&circuit).expectation(&h).re;
    let estimated = ShotEstimator::new(30_000).expectation(&circuit, &h);
    assert!((exact - estimated).abs() < 0.02, "exact {exact} vs estimated {estimated}");
    // And the tableau value CAFQA reported is the same number.
    assert!((exact - result.energy).abs() < 1e-9);
}

/// Stabilizer states need exactly one shot per term (paper §3 step 7):
/// the 1-shot estimate on a Clifford circuit is *exact*.
#[test]
fn one_shot_is_exact_on_stabilizer_states() {
    let pipe = ChemPipeline::build(MoleculeKind::H2, 2.0, &ScfKind::Rhf).unwrap();
    let problem = pipe.problem(1, 1, false).unwrap();
    let h = problem.hamiltonian.clone();
    let runner = MolecularCafqa::new(problem);
    let result = runner.run(&CafqaOptions::quick());
    let circuit = runner.circuit(&result);
    for seed in 0..5 {
        let one_shot = ShotEstimator { shots: 1, readout_error: 0.0, seed };
        let estimate = one_shot.expectation(&circuit, &h);
        assert!(
            (estimate - result.energy).abs() < 1e-9,
            "seed {seed}: {estimate} vs {}",
            result.energy
        );
    }
}

/// Noise strictly degrades the energy estimate of a good initialization,
/// and worse devices degrade it more (the Fig. 5 ordering, end to end on
/// a molecular circuit).
#[test]
fn noise_ordering_on_molecular_circuit() {
    let pipe = ChemPipeline::build(MoleculeKind::H2, 0.74, &ScfKind::Rhf).unwrap();
    let problem = pipe.problem(1, 1, false).unwrap();
    let h = problem.hamiltonian.clone();
    let runner = MolecularCafqa::new(problem);
    let result = runner.run(&CafqaOptions::quick());
    let circuit = runner.circuit(&result);
    let ideal = Statevector::from_circuit(&circuit).expectation(&h).re;
    let good = NoiseModel::casablanca_class().expectation(&circuit, &h);
    let bad = NoiseModel::manhattan_class().expectation(&circuit, &h);
    assert!(ideal < good, "ideal {ideal} vs casablanca {good}");
    assert!(good < bad, "casablanca {good} vs manhattan {bad}");
}

/// The S² penalty steers the search toward the requested spin sector.
#[test]
fn s_squared_penalty_respects_sector() {
    let pipe = ChemPipeline::build(MoleculeKind::H2, 1.5, &ScfKind::Rhf).unwrap();
    let problem = pipe.problem(1, 1, true).unwrap();
    let exact = problem.exact_energy.unwrap();
    let runner = MolecularCafqa::new(problem);
    let opts = CafqaOptions { warmup: 80, iterations: 120, s2_penalty: 0.5, ..Default::default() };
    let result = runner.run(&opts);
    // Still lands between exact and HF — penalties never push the raw
    // energy report off the physical branch.
    assert!(result.energy >= exact - 1e-9);
    assert!(result.energy <= runner.problem().hf_energy + 1e-9);
    // The winning state is (numerically) a singlet.
    let ansatz = EfficientSu2::new(runner.problem().n_qubits, 1);
    let circuit = ansatz.bind_clifford(&result.best_config);
    let s2 = Statevector::from_circuit(&circuit).expectation(&runner.problem().s_squared_op).re;
    assert!(s2.abs() < 0.6, "S² = {s2}");
}
