//! Cross-crate integration tests: the full paper pipeline end to end.

use cafqa::chem::{qubit_ground_energy, ChemPipeline, MoleculeKind, ScfKind};
use cafqa::circuit::{Ansatz, EfficientSu2};
use cafqa::clifford::Tableau;
use cafqa::core::metrics::correlation_recovered;
use cafqa::core::{CafqaOptions, MolecularCafqa};
use cafqa::sim::Statevector;
use cafqa::vqe::{run_vqe, IdealBackend, SpsaOptions};

/// Geometry → integrals → SCF → qubit Hamiltonian → CAFQA → VQE, with
/// every energy relation the paper relies on checked along the way.
#[test]
fn full_pipeline_h2_stretched() {
    let pipe = ChemPipeline::build(MoleculeKind::H2, 2.4, &ScfKind::Rhf).unwrap();
    let problem = pipe.problem(1, 1, true).unwrap();
    let hf = problem.hf_energy;
    let exact = problem.exact_energy.unwrap();
    assert!(exact < hf, "correlation energy must be positive");

    let runner = MolecularCafqa::new(problem);
    let cafqa = runner.run(&CafqaOptions::quick());
    // CAFQA ∈ [exact, HF]: variational from above, seeded from HF.
    assert!(cafqa.energy <= hf + 1e-9);
    assert!(cafqa.energy >= exact - 1e-9);
    assert!(correlation_recovered(cafqa.energy, hf, exact) > 50.0);

    // Post-CAFQA VQE on the ideal backend refines toward exact.
    let h = runner.problem().hamiltonian.clone();
    let spsa = SpsaOptions { iterations: 250, ..Default::default() };
    let vqe = run_vqe(&runner.ansatz, &h, &cafqa.initial_angles(), &IdealBackend, &spsa);
    assert!(vqe.best_energy <= cafqa.energy + 1e-9);
    assert!(vqe.best_energy >= exact - 1e-6);
}

/// The tableau and dense simulators agree on every Clifford configuration
/// of the molecular ansatz (Gottesman–Knill end-to-end).
#[test]
fn stabilizer_and_dense_agree_on_molecular_ansatz() {
    let pipe = ChemPipeline::build(MoleculeKind::H2, 1.0, &ScfKind::Rhf).unwrap();
    let problem = pipe.problem(1, 1, false).unwrap();
    let ansatz = EfficientSu2::new(problem.n_qubits, 1);
    for k in 0..4 {
        let config = vec![k; ansatz.num_parameters()];
        let circuit = ansatz.bind_clifford(&config);
        let tab = Tableau::from_circuit(&circuit).unwrap().expectation(&problem.hamiltonian);
        let dense = Statevector::from_circuit(&circuit).expectation(&problem.hamiltonian).re;
        assert!((tab - dense).abs() < 1e-9, "config {k}: {tab} vs {dense}");
    }
}

/// The HF configuration is exactly representable and reproduces the SCF
/// energy through the whole stack (ansatz → tableau → Hamiltonian).
#[test]
fn hf_roundtrip_through_every_layer() {
    for (kind, bond) in [(MoleculeKind::H2, 0.74), (MoleculeKind::LiH, 1.6)] {
        let pipe = ChemPipeline::build(kind, bond, &ScfKind::Rhf).unwrap();
        let (na, nb) = pipe.default_sector();
        let problem = pipe.problem(na, nb, false).unwrap();
        let ansatz = EfficientSu2::new(problem.n_qubits, 1);
        let config = ansatz.basis_state_config(problem.hf_bits);
        let circuit = ansatz.bind_clifford(&config);
        let energy = Tableau::from_circuit(&circuit).unwrap().expectation(&problem.hamiltonian);
        assert!(
            (energy - problem.scf_energy).abs() < 1e-8,
            "{}: {energy} vs scf {}",
            kind.name(),
            problem.scf_energy
        );
    }
}

/// Qubit-space Lanczos agrees with determinant FCI through the facade.
#[test]
fn exact_solvers_cross_validate() {
    let pipe = ChemPipeline::build(MoleculeKind::H6, 1.3, &ScfKind::Rhf).unwrap();
    let (na, nb) = pipe.default_sector();
    let problem = pipe.problem(na, nb, true).unwrap();
    let qubit = qubit_ground_energy(&problem.hamiltonian).unwrap();
    let fci = problem.exact_energy.unwrap();
    assert!((qubit - fci).abs() < 1e-6, "{qubit} vs {fci}");
}
