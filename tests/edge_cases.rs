//! Failure-injection and boundary tests across the workspace.

use cafqa::bayesopt::{minimize, BoOptions, SearchSpace};
use cafqa::chem::{
    fci_ground_state, hydrogen_chain, ChemPipeline, MoleculeKind, ScfKind, ScfOptions,
};
use cafqa::circuit::{Circuit, EfficientSu2};
use cafqa::clifford::{BranchDecomposition, CliffordTError, Tableau};
use cafqa::core::{CafqaOptions, MolecularCafqa, Penalty};
use cafqa::pauli::{PauliOp, PauliString};

/// The FCI guard refuses infeasible determinant spaces instead of
/// allocating; the Cr2-class surrogate must hit this path.
#[test]
fn fci_refuses_h18() {
    let pipe = cafqa::chem::ChemPipeline::from_molecule(
        hydrogen_chain(18, 1.0),
        None,
        &ScfKind::Rhf,
        &ScfOptions::robust(),
    );
    // SCF may or may not converge fully; either way the FCI space is too
    // large and must be refused cleanly.
    if let Ok(pipe) = pipe {
        let r = fci_ground_state(&pipe.spin_integrals, 9, 9);
        assert!(matches!(r, Err(cafqa::chem::FciError::TooLarge { .. })));
    }
}

/// A non-Clifford circuit is rejected by the tableau but accepted by the
/// branch engine — and the branch engine enforces its own budget.
#[test]
fn simulator_boundaries() {
    let mut c = Circuit::new(2);
    c.h(0).ry(1, 0.7);
    assert!(Tableau::from_circuit(&c).is_err());
    assert!(BranchDecomposition::new(&c).is_ok());
    let mut too_many = Circuit::new(1);
    for _ in 0..20 {
        too_many.t(0);
    }
    assert!(matches!(
        BranchDecomposition::new(&too_many),
        Err(CliffordTError::TooManyBranches { count: 20 })
    ));
}

/// The cation sector of a shared pipeline differs from the neutral one in
/// both Hamiltonian constants and HF bits — a regression test for the
/// sector-dependent two-qubit reduction.
#[test]
fn sector_reduction_constants_differ() {
    let pipe = ChemPipeline::build(MoleculeKind::H2, 1.0, &ScfKind::Rhf).unwrap();
    let neutral = pipe.problem(1, 1, false).unwrap();
    let cation = pipe.problem(1, 0, false).unwrap();
    assert_ne!(neutral.hf_bits, cation.hf_bits);
    // Same register, different tapering constants ⇒ different identity
    // coefficient in at least one operator.
    assert_eq!(neutral.n_qubits, cation.n_qubits);
    let ni = neutral.hamiltonian.identity_coefficient();
    let ci = cation.hamiltonian.identity_coefficient();
    assert!((ni - ci).norm() > 1e-12 || neutral.hamiltonian != cation.hamiltonian);
}

/// BO handles degenerate spaces: single-parameter, and seeds equal to the
/// whole space.
#[test]
fn bo_degenerate_spaces() {
    let space = SearchSpace::uniform(1, 4);
    let opts = BoOptions { warmup: 10, iterations: 20, ..Default::default() };
    let objective = |batch: &[Vec<usize>]| batch.iter().map(|c| c[0] as f64).collect::<Vec<f64>>();
    let r = minimize(&space, objective, &[], &opts);
    assert_eq!(r.best_value, 0.0);
    // Seeding every point of the space up front still terminates.
    let seeds: Vec<Vec<usize>> = (0..4).map(|k| vec![k]).collect();
    let r = minimize(&space, objective, &seeds, &opts);
    assert_eq!(r.best_value, 0.0);
    assert_eq!(r.iterations_to_best, 1);
}

/// Penalties with zero weight change nothing; penalties with huge weight
/// dominate — the objective is linear in them.
#[test]
fn penalty_weight_scaling() {
    let h: PauliOp = "Z".parse().unwrap();
    let ansatz = EfficientSu2::new(1, 0);
    let x_op: PauliOp = "X".parse().unwrap();
    let free = cafqa::core::CliffordObjective::new(&ansatz, &h);
    let weighted = cafqa::core::CliffordObjective::new(&ansatz, &h)
        .with_penalty(Penalty::new("x", &x_op, 1.0, 100.0));
    // |0⟩: ⟨X⟩ = 0 ⇒ (X−1)² expectation is 1+... = ⟨X²⟩ −2⟨X⟩ +1 = 2.
    let cfg = vec![0usize, 0];
    assert_eq!(free.evaluate(&cfg).energy, weighted.evaluate(&cfg).energy);
    assert!((weighted.evaluate(&cfg).penalized - (1.0 + 200.0)).abs() < 1e-9);
}

/// The polish stage never worsens the result and respects the HF bound
/// even with zero BO iterations.
#[test]
fn polish_only_search_respects_hf_bound() {
    let pipe = ChemPipeline::build(MoleculeKind::H2, 2.96, &ScfKind::Rhf).unwrap();
    let problem = pipe.problem(1, 1, true).unwrap();
    let exact = problem.exact_energy.unwrap();
    let runner = MolecularCafqa::new(problem);
    // No warmup, no BO — pure coordinate descent from the HF seed.
    let opts = CafqaOptions { warmup: 0, iterations: 0, polish_sweeps: 8, ..Default::default() };
    let result = runner.run(&opts);
    assert!(result.energy <= runner.problem().hf_energy + 1e-9);
    assert!(result.energy >= exact - 1e-9);
    // At extreme stretch, even polish-only recovers most correlation.
    let recovered =
        (runner.problem().hf_energy - result.energy) / (runner.problem().hf_energy - exact);
    assert!(recovered > 0.5, "recovered {recovered}");
}

/// Pauli strings survive the full 64-qubit boundary.
#[test]
fn pauli_at_64_qubits() {
    let p = PauliString::from_masks(64, u64::MAX, 0);
    assert_eq!(p.weight(), 64);
    let q = PauliString::from_masks(64, 0, u64::MAX);
    // X⊗64 and Z⊗64 anticommute sitewise on 64 (even) sites ⇒ commute.
    assert!(p.commutes_with(&q));
    let (k, prod) = p.mul(&q);
    assert_eq!(prod.y_count(), 64);
    assert_eq!(k.rem_euclid(2), 0);
}
